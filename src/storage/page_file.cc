#include "storage/page_file.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "storage/atomic_file.h"

namespace tsq::storage {

namespace {

std::string PageIdMessage(const char* what, PageId id, std::size_t count) {
  std::ostringstream msg;
  msg << what << ": page " << id << " (file has " << count << " pages)";
  return msg.str();
}

// Process-wide counters summed over every PageFile; the per-instance atomics
// remain the benchmark-facing numbers (they are resettable per epoch), the
// global ones feed MetricsRegistry::RenderText/Json. Only successful I/Os
// count, matching the per-instance counters.
struct PageFileMetrics {
  obs::Counter* reads;
  obs::Counter* writes;
  obs::Counter* allocations;

  static const PageFileMetrics& Get() {
    static const PageFileMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return PageFileMetrics{registry.counter("storage.page_file.reads"),
                             registry.counter("storage.page_file.writes"),
                             registry.counter("storage.page_file.allocations")};
    }();
    return metrics;
  }
};

}  // namespace

std::uint64_t PageFile::Checksum(const Page& page) {
  // FNV-1a over 64-bit words (the page size is a multiple of 8): one mix per
  // 8 bytes keeps the per-read verification cost well under a microsecond.
  static_assert(kPageSize % sizeof(std::uint64_t) == 0);
  std::uint64_t hash = 0xCBF29CE484222325ull;
  const std::uint8_t* data = page.bytes.data();
  for (std::size_t i = 0; i < kPageSize; i += sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, data + i, sizeof word);
    hash ^= word;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

PageId PageFile::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.emplace_back();
  checksums_.push_back(Checksum(pages_.back()));
  allocations_.fetch_add(1, std::memory_order_relaxed);
  PageFileMetrics::Get().allocations->Increment();
  return static_cast<PageId>(pages_.size() - 1);
}

Status PageFile::Read(PageId id, Page* out) {
  FaultDecision fault;
  if (FaultHook* hook = fault_hook_.load(std::memory_order_acquire)) {
    fault = hook->OnRead(id);
  }
  const std::uint64_t delay = read_delay_nanos() + fault.delay_nanos;
  if (delay > 0) {
    // Spin outside the lock: concurrent readers pay their simulated
    // latencies in parallel, like requests in flight on independent disks.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::nanoseconds(delay);
    while (std::chrono::steady_clock::now() < until) {
      // Models the fixed per-page cost of a (cached-era) disk access.
    }
  }
  if (fault.action == FaultDecision::Action::kFail) {
    // Failed I/Os are never counted; the hook's status stands in for the
    // device error verbatim.
    return fault.status.ok()
               ? Status::IoError(PageIdMessage("injected fault", id, 0))
               : fault.status;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= pages_.size()) {
      return Status::OutOfRange(PageIdMessage("read", id, pages_.size()));
    }
    const Page& stored = pages_[id];
    // Faults mutate the page *as delivered*, not the stored copy, and then
    // go through the normal verification below: corruption and torn reads
    // are caught by the same checksum machinery a real mismatch would hit.
    Page delivered = stored;
    if (fault.action == FaultDecision::Action::kCorruptBytes) {
      delivered.bytes[fault.byte_offset % kPageSize] ^= 0xFF;
    } else if (fault.action == FaultDecision::Action::kShortRead &&
               fault.valid_bytes < kPageSize) {
      std::fill(delivered.bytes.begin() + fault.valid_bytes,
                delivered.bytes.end(), std::uint8_t{0});
    }
    if (Checksum(delivered) != checksums_[id]) {
      return Status::Corruption(PageIdMessage("checksum mismatch", id,
                                              pages_.size()));
    }
    *out = delivered;
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  PageFileMetrics::Get().reads->Increment();
  return Status::Ok();
}

Status PageFile::Write(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange(PageIdMessage("write", id, pages_.size()));
  }
  pages_[id] = page;
  checksums_[id] = Checksum(page);
  writes_.fetch_add(1, std::memory_order_relaxed);
  PageFileMetrics::Get().writes->Increment();
  return Status::Ok();
}

void PageFile::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.clear();
  checksums_.clear();
}

namespace {
// Format v1 ("TSQPAG") stored raw pages only; LoadFrom recomputed checksums
// from whatever bytes it read, so on-disk corruption round-tripped as valid.
// v2 ("TSQPG2") persists the per-page checksums so loads verify against the
// values computed when the pages were written.
constexpr std::uint64_t kPageFileMagicV1 = 0x545351504147u;     // "TSQPAG"
constexpr std::uint64_t kPageFileMagicV2 = 0x325347505153u;     // "TSQPG2"
}  // namespace

Status PageFile::SaveTo(const std::string& path, FaultHook* hook,
                        FileDigest* digest) const {
  // Write-to-temp + rename: a crash or error anywhere in here leaves the
  // previous complete file at `path` untouched (the old SaveTo opened the
  // destination with std::ios::trunc, so a torn save destroyed the last
  // good checkpoint before the new one existed).
  AtomicFile out(path, hook);
  TSQ_RETURN_IF_ERROR(out.Open());
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t count = pages_.size();
  TSQ_RETURN_IF_ERROR(out.Append(&kPageFileMagicV2, sizeof kPageFileMagicV2));
  TSQ_RETURN_IF_ERROR(out.Append(&count, sizeof count));
  if (!checksums_.empty()) {
    TSQ_RETURN_IF_ERROR(out.Append(checksums_.data(),
                                   checksums_.size() * sizeof(std::uint64_t)));
  }
  // Pages go out in bounded chunks: each chunk is one crash point for the
  // write-fault sweep, so big files do not blow up the number of injection
  // steps while small files still get a mid-body torn state.
  constexpr std::size_t kPagesPerChunk = 256;
  std::vector<std::uint8_t> chunk;
  for (std::size_t begin = 0; begin < pages_.size();
       begin += kPagesPerChunk) {
    const std::size_t end = std::min(begin + kPagesPerChunk, pages_.size());
    chunk.clear();
    chunk.reserve((end - begin) * kPageSize);
    for (std::size_t i = begin; i < end; ++i) {
      chunk.insert(chunk.end(), pages_[i].bytes.begin(),
                   pages_[i].bytes.end());
    }
    TSQ_RETURN_IF_ERROR(out.Append(chunk.data(), chunk.size()));
  }
  TSQ_RETURN_IF_ERROR(out.Commit());
  if (digest != nullptr) *digest = out.digest();
  return Status::Ok();
}

Status PageFile::LoadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  std::uint64_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || (magic != kPageFileMagicV2 && magic != kPageFileMagicV1)) {
    return Status::Corruption("not a tsq page file: " + path);
  }
  if (magic == kPageFileMagicV1) {
    return Status::Corruption(
        "unsupported page file format v1 (no persisted checksums): " + path);
  }
  // Bound the header's page count against the actual file size *before*
  // allocating anything: a corrupted count would otherwise request exabytes
  // and die on bad_alloc instead of reporting Corruption. Exact-size match
  // also rejects trailing garbage.
  const std::uint64_t header = sizeof magic + sizeof count;
  if (count > (file_size - std::min(file_size, header)) /
                  (sizeof(std::uint64_t) + kPageSize) ||
      file_size != header + count * (sizeof(std::uint64_t) + kPageSize)) {
    return Status::Corruption("page count inconsistent with file size: " +
                              path);
  }
  std::vector<std::uint64_t> checksums(count);
  for (std::uint64_t& checksum : checksums) {
    in.read(reinterpret_cast<char*>(&checksum), sizeof checksum);
    if (!in) return Status::Corruption("truncated page file: " + path);
  }
  std::vector<Page> pages(count);
  for (Page& page : pages) {
    in.read(reinterpret_cast<char*>(page.bytes.data()), kPageSize);
    if (!in) return Status::Corruption("truncated page file: " + path);
  }
  // Verify against the *persisted* checksums before committing anything:
  // bytes corrupted at rest no longer re-bless themselves on load.
  for (std::size_t i = 0; i < pages.size(); ++i) {
    if (Checksum(pages[i]) != checksums[i]) {
      return Status::Corruption(
          PageIdMessage("checksum mismatch on load", static_cast<PageId>(i),
                        pages.size()) +
          " in " + path);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  pages_ = std::move(pages);
  checksums_ = std::move(checksums);
  ResetStats();
  return Status::Ok();
}

Status PageFile::CorruptForTesting(PageId id, std::size_t byte_offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange(PageIdMessage("corrupt", id, pages_.size()));
  }
  if (byte_offset >= kPageSize) {
    return Status::OutOfRange("corrupt: byte offset beyond page");
  }
  pages_[id].bytes[byte_offset] ^= 0xFF;
  return Status::Ok();
}

}  // namespace tsq::storage
