#include "storage/page_file.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tsq::storage {

namespace {

std::string PageIdMessage(const char* what, PageId id, std::size_t count) {
  std::ostringstream msg;
  msg << what << ": page " << id << " (file has " << count << " pages)";
  return msg.str();
}

}  // namespace

std::uint64_t PageFile::Checksum(const Page& page) {
  // FNV-1a over 64-bit words (the page size is a multiple of 8): one mix per
  // 8 bytes keeps the per-read verification cost well under a microsecond.
  static_assert(kPageSize % sizeof(std::uint64_t) == 0);
  std::uint64_t hash = 0xCBF29CE484222325ull;
  const std::uint8_t* data = page.bytes.data();
  for (std::size_t i = 0; i < kPageSize; i += sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, data + i, sizeof word);
    hash ^= word;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

PageId PageFile::Allocate() {
  pages_.emplace_back();
  checksums_.push_back(Checksum(pages_.back()));
  ++stats_.allocations;
  return static_cast<PageId>(pages_.size() - 1);
}

Status PageFile::Read(PageId id, Page* out) {
  if (id >= pages_.size()) {
    return Status::OutOfRange(PageIdMessage("read", id, pages_.size()));
  }
  ++stats_.reads;
  if (read_delay_nanos_ > 0) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::nanoseconds(read_delay_nanos_);
    while (std::chrono::steady_clock::now() < until) {
      // Spin: models the fixed per-page cost of a (cached-era) disk access.
    }
  }
  const Page& stored = pages_[id];
  if (Checksum(stored) != checksums_[id]) {
    return Status::Corruption(PageIdMessage("checksum mismatch", id,
                                            pages_.size()));
  }
  *out = stored;
  return Status::Ok();
}

Status PageFile::Write(PageId id, const Page& page) {
  if (id >= pages_.size()) {
    return Status::OutOfRange(PageIdMessage("write", id, pages_.size()));
  }
  ++stats_.writes;
  pages_[id] = page;
  checksums_[id] = Checksum(page);
  return Status::Ok();
}

namespace {
constexpr std::uint64_t kPageFileMagic = 0x545351504147u;  // "TSQPAG"
}  // namespace

Status PageFile::SaveTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const std::uint64_t count = pages_.size();
  out.write(reinterpret_cast<const char*>(&kPageFileMagic),
            sizeof kPageFileMagic);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const Page& page : pages_) {
    out.write(reinterpret_cast<const char*>(page.bytes.data()), kPageSize);
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status PageFile::LoadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::uint64_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || magic != kPageFileMagic) {
    return Status::Corruption("not a tsq page file: " + path);
  }
  std::vector<Page> pages(count);
  for (Page& page : pages) {
    in.read(reinterpret_cast<char*>(page.bytes.data()), kPageSize);
    if (!in) return Status::Corruption("truncated page file: " + path);
  }
  pages_ = std::move(pages);
  checksums_.resize(pages_.size());
  for (std::size_t i = 0; i < pages_.size(); ++i) {
    checksums_[i] = Checksum(pages_[i]);
  }
  stats_ = IoStats{};
  return Status::Ok();
}

Status PageFile::CorruptForTesting(PageId id, std::size_t byte_offset) {
  if (id >= pages_.size()) {
    return Status::OutOfRange(PageIdMessage("corrupt", id, pages_.size()));
  }
  if (byte_offset >= kPageSize) {
    return Status::OutOfRange("corrupt: byte offset beyond page");
  }
  pages_[id].bytes[byte_offset] ^= 0xFF;
  return Status::Ok();
}

}  // namespace tsq::storage
