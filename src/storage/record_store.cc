#include "storage/record_store.h"

#include <cstring>

#include "common/check.h"

namespace tsq::storage {

RecordStore::RecordStore(PageFile* file) : file_(file) {
  TSQ_CHECK(file != nullptr);
}

Result<RecordId> RecordStore::Append(std::span<const std::uint8_t> payload) {
  // Start a fresh page when there is no room for even the header plus one
  // payload byte (or for the header of an empty record).
  const std::uint32_t min_space =
      kHeaderSize + (payload.empty() ? 0u : 1u);
  if (current_page_ == kInvalidPageId || cursor_ + min_space > kPageSize) {
    current_page_ = file_->Allocate();
    cursor_ = 0;
  }

  const RecordId id{current_page_, cursor_};
  Page page;
  TSQ_RETURN_IF_ERROR(file_->Read(current_page_, &page));

  const std::uint32_t total = static_cast<std::uint32_t>(payload.size());
  std::memcpy(page.bytes.data() + cursor_, &total, kHeaderSize);
  cursor_ += kHeaderSize;

  std::size_t written = 0;
  while (true) {
    const std::size_t space = kPageSize - cursor_;
    const std::size_t chunk = std::min(space, payload.size() - written);
    std::memcpy(page.bytes.data() + cursor_, payload.data() + written, chunk);
    written += chunk;
    cursor_ += static_cast<std::uint32_t>(chunk);
    TSQ_RETURN_IF_ERROR(file_->Write(current_page_, page));
    if (written == payload.size()) break;
    // Continue on a fresh page; freshly allocated pages are consecutive, so
    // Get can follow the record by incrementing the page id.
    const PageId next = file_->Allocate();
    TSQ_CHECK_EQ(next, current_page_ + 1);
    current_page_ = next;
    cursor_ = 0;
    TSQ_RETURN_IF_ERROR(file_->Read(current_page_, &page));
  }
  ++record_count_;
  return id;
}

Result<std::vector<std::uint8_t>> RecordStore::Get(
    RecordId id, std::uint64_t* pages_read) const {
  const auto count_page = [pages_read] {
    if (pages_read != nullptr) ++*pages_read;
  };
  Page page;
  TSQ_RETURN_IF_ERROR(file_->Read(id.page, &page));
  count_page();
  if (id.offset + kHeaderSize > kPageSize) {
    return Status::OutOfRange("record offset beyond page");
  }
  std::uint32_t total = 0;
  std::memcpy(&total, page.bytes.data() + id.offset, kHeaderSize);

  std::vector<std::uint8_t> payload(total);
  std::size_t read = 0;
  PageId page_id = id.page;
  std::size_t cursor = id.offset + kHeaderSize;
  while (read < total) {
    if (cursor >= kPageSize) {
      ++page_id;
      cursor = 0;
      TSQ_RETURN_IF_ERROR(file_->Read(page_id, &page));
      count_page();
    }
    const std::size_t chunk = std::min(kPageSize - cursor,
                                       static_cast<std::size_t>(total) - read);
    std::memcpy(payload.data() + read, page.bytes.data() + cursor, chunk);
    read += chunk;
    cursor += chunk;
  }
  return payload;
}

Result<std::vector<std::uint8_t>> RecordStore::GetRange(
    RecordId id, std::size_t byte_offset, std::size_t length) const {
  Page page;
  TSQ_RETURN_IF_ERROR(file_->Read(id.page, &page));
  if (id.offset + kHeaderSize > kPageSize) {
    return Status::OutOfRange("record offset beyond page");
  }
  std::uint32_t total = 0;
  std::memcpy(&total, page.bytes.data() + id.offset, kHeaderSize);
  if (byte_offset + length > total) {
    return Status::OutOfRange("range exceeds record payload");
  }

  // Payload layout: the first fragment fills the header page, the rest
  // continues on consecutive pages from byte 0.
  const std::size_t first_fragment = kPageSize - (id.offset + kHeaderSize);
  std::vector<std::uint8_t> out(length);
  std::size_t produced = 0;
  std::size_t cursor_offset = byte_offset;
  PageId page_id;
  std::size_t cursor;
  bool page_loaded;
  if (cursor_offset < first_fragment) {
    page_id = id.page;
    cursor = id.offset + kHeaderSize + cursor_offset;
    page_loaded = true;  // header page already in hand
  } else {
    const std::size_t rest = cursor_offset - first_fragment;
    page_id = id.page + 1 + static_cast<PageId>(rest / kPageSize);
    cursor = rest % kPageSize;
    page_loaded = false;
  }
  while (produced < length) {
    if (!page_loaded) {
      TSQ_RETURN_IF_ERROR(file_->Read(page_id, &page));
      page_loaded = true;
    }
    const std::size_t chunk =
        std::min(kPageSize - cursor, length - produced);
    std::memcpy(out.data() + produced, page.bytes.data() + cursor, chunk);
    produced += chunk;
    cursor += chunk;
    if (cursor >= kPageSize) {
      ++page_id;
      cursor = 0;
      page_loaded = false;
    }
  }
  return out;
}

Result<ts::Series> RecordStore::GetSeriesRange(RecordId id, std::size_t first,
                                               std::size_t count) const {
  Result<std::vector<std::uint8_t>> bytes =
      GetRange(id, first * sizeof(double), count * sizeof(double));
  if (!bytes.ok()) return bytes.status();
  ts::Series series(count);
  std::memcpy(series.data(), bytes->data(), bytes->size());
  return series;
}

Result<RecordId> RecordStore::AppendSeries(const ts::Series& series) {
  std::vector<std::uint8_t> payload(series.size() * sizeof(double));
  std::memcpy(payload.data(), series.data(), payload.size());
  return Append(payload);
}

Result<ts::Series> RecordStore::GetSeries(RecordId id,
                                          std::uint64_t* pages_read) const {
  Result<std::vector<std::uint8_t>> payload = Get(id, pages_read);
  if (!payload.ok()) return payload.status();
  if (payload->size() % sizeof(double) != 0) {
    return Status::Corruption("record size is not a multiple of 8");
  }
  ts::Series series(payload->size() / sizeof(double));
  std::memcpy(series.data(), payload->data(), payload->size());
  return series;
}

}  // namespace tsq::storage
