#ifndef TSQ_STORAGE_PAGE_FILE_H_
#define TSQ_STORAGE_PAGE_FILE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace tsq::storage {

/// Fixed page size; sized like a classic database page so that R*-tree node
/// fan-outs and record-per-page counts are realistic.
inline constexpr std::size_t kPageSize = 4096;

using PageId = std::uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFF;

/// One disk page.
struct Page {
  std::array<std::uint8_t, kPageSize> bytes{};
};

/// Counters exposed by the page file. The paper's experiments report "number
/// of disk accesses"; `reads` is that number for whatever structure lives in
/// this file.
struct IoStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t allocations = 0;
};

/// An in-memory simulation of a paged disk file.
///
/// Every Read/Write is counted, which makes index traversals and record
/// fetches measurable in the same unit the paper uses (page accesses),
/// independent of the host machine. Each page carries a checksum maintained
/// on write and verified on read, so corruption (or the failure-injection
/// test hook) is detected rather than silently propagated.
class PageFile {
 public:
  PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Allocates a zeroed page and returns its id.
  PageId Allocate();

  /// Simulates storage latency: every Read spins for `nanos` nanoseconds.
  /// Benchmarks use this to reproduce the paper's cost ratio between a disk
  /// access and a sequence comparison (C_cmp = 0.4 * C_DA on their 1999
  /// hardware); 0 (the default) disables the delay.
  void set_read_delay_nanos(std::uint64_t nanos) { read_delay_nanos_ = nanos; }
  std::uint64_t read_delay_nanos() const { return read_delay_nanos_; }

  /// Number of allocated pages.
  std::size_t page_count() const { return pages_.size(); }

  /// Reads page `id` into `*out`. Fails with OutOfRange for an unknown id and
  /// Corruption when the stored checksum does not match the page content.
  Status Read(PageId id, Page* out);

  /// Writes `page` to `id` and updates its checksum.
  Status Write(PageId id, const Page& page);

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

  /// Test hook: flips a byte in the stored page without updating the
  /// checksum, so the next Read reports corruption.
  Status CorruptForTesting(PageId id, std::size_t byte_offset);

  /// Writes every page to `path` (binary: magic, page count, raw pages).
  Status SaveTo(const std::string& path) const;

  /// Replaces this file's contents with the pages stored at `path`
  /// (checksums recomputed; counters reset).
  Status LoadFrom(const std::string& path);

 private:
  static std::uint64_t Checksum(const Page& page);

  std::vector<Page> pages_;
  std::vector<std::uint64_t> checksums_;
  IoStats stats_;
  std::uint64_t read_delay_nanos_ = 0;
};

}  // namespace tsq::storage

#endif  // TSQ_STORAGE_PAGE_FILE_H_
