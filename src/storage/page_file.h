#ifndef TSQ_STORAGE_PAGE_FILE_H_
#define TSQ_STORAGE_PAGE_FILE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/atomic_file.h"
#include "storage/fault_injection.h"

namespace tsq::storage {

/// Fixed page size; sized like a classic database page so that R*-tree node
/// fan-outs and record-per-page counts are realistic.
inline constexpr std::size_t kPageSize = 4096;

using PageId = std::uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFF;

/// One disk page.
struct Page {
  std::array<std::uint8_t, kPageSize> bytes{};
};

/// Counters exposed by the page file. The paper's experiments report "number
/// of disk accesses"; `reads` is that number for whatever structure lives in
/// this file.
///
/// Counting convention: only *successful* I/Os are counted, everywhere. A
/// Read that fails (OutOfRange or Corruption) and a Write that fails
/// (OutOfRange) leave the counters untouched, so `reads`/`writes` equal the
/// number of pages actually served/stored.
struct IoStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t allocations = 0;
};

/// An in-memory simulation of a paged disk file.
///
/// Every Read/Write is counted, which makes index traversals and record
/// fetches measurable in the same unit the paper uses (page accesses),
/// independent of the host machine. Each page carries a checksum maintained
/// on write and verified on read, so corruption (or the failure-injection
/// test hook) is detected rather than silently propagated.
///
/// Thread safety: Read, Write, Allocate and the counters may be called
/// concurrently — page content is guarded by a mutex and the counters are
/// atomic. The simulated read-delay spin happens on the calling thread
/// *outside* the lock, so N concurrent readers pay their latencies in
/// parallel (the model of N independent disks the parallel executor
/// assumes). SaveTo/LoadFrom still require external exclusion from writers.
class PageFile {
 public:
  PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Allocates a zeroed page and returns its id.
  PageId Allocate();

  /// Simulates storage latency: every Read spins for `nanos` nanoseconds on
  /// the calling thread (concurrent readers spin independently). Benchmarks
  /// use this to reproduce the paper's cost ratio between a disk access and
  /// a sequence comparison (C_cmp = 0.4 * C_DA on their 1999 hardware);
  /// 0 (the default) disables the delay.
  void set_read_delay_nanos(std::uint64_t nanos) {
    read_delay_nanos_.store(nanos, std::memory_order_relaxed);
  }
  std::uint64_t read_delay_nanos() const {
    return read_delay_nanos_.load(std::memory_order_relaxed);
  }

  /// Number of allocated pages.
  std::size_t page_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pages_.size();
  }

  /// Reads page `id` into `*out`. Fails with OutOfRange for an unknown id and
  /// Corruption when the stored checksum does not match the page content.
  Status Read(PageId id, Page* out);

  /// Writes `page` to `id` and updates its checksum.
  Status Write(PageId id, const Page& page);

  /// Snapshot of the counters (each counter is read atomically; the snapshot
  /// as a whole is not a consistent cut under concurrent I/O).
  IoStats stats() const {
    IoStats out;
    out.reads = reads_.load(std::memory_order_relaxed);
    out.writes = writes_.load(std::memory_order_relaxed);
    out.allocations = allocations_.load(std::memory_order_relaxed);
    return out;
  }
  void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    allocations_.store(0, std::memory_order_relaxed);
  }

  /// Drops every page (ids restart from 0). Counters are left alone — reset
  /// them separately if the rebuild's I/O should not be charged to anyone.
  /// Requires external exclusion from every concurrent reader and writer
  /// (the engine calls this only under its write lock); any BufferPool
  /// caching this file must be Clear()ed too, since page ids are reused.
  void Clear();

  /// Test hook: flips a byte in the stored page without updating the
  /// checksum, so the next Read reports corruption.
  Status CorruptForTesting(PageId id, std::size_t byte_offset);

  /// Installs (or, with nullptr, removes) a fault-injection hook consulted
  /// at the top of every Read. kFail decisions return the hook's status
  /// without counting the read; kCorruptBytes/kShortRead mutate the page as
  /// delivered and let the normal checksum verification detect the damage,
  /// so the stored copy stays intact. The caller must keep the hook alive
  /// until it is uninstalled and in-flight reads have drained.
  void SetFaultHook(FaultHook* hook) {
    fault_hook_.store(hook, std::memory_order_release);
  }

  /// Writes every page to `path` (format v2, binary: magic, page count, the
  /// per-page checksums, then the raw pages). Persisting the checksums is
  /// what lets LoadFrom detect bytes corrupted at rest.
  ///
  /// The write is atomic: content goes to `<path>.tmp` and is fsynced
  /// before being renamed into place (storage::AtomicFile), so a crash or
  /// error mid-save leaves the previous complete file at `path` untouched.
  /// `hook`, when non-null, has its OnWrite consulted at every step — the
  /// crash-recovery harness's injection point. `digest`, when non-null,
  /// receives the written file's size and hash (the checkpoint manifest
  /// entry).
  Status SaveTo(const std::string& path, FaultHook* hook = nullptr,
                FileDigest* digest = nullptr) const;

  /// Replaces this file's contents with the pages stored at `path` after
  /// verifying every page against its *persisted* checksum (counters reset).
  /// Returns Corruption — without modifying this file — when a checksum does
  /// not match, when the file is truncated or its header page count is
  /// inconsistent with its size (validated before any allocation, so a
  /// corrupted count can never trigger bad_alloc), or for the legacy v1
  /// format (which carried no checksums and cannot be verified).
  Status LoadFrom(const std::string& path);

 private:
  static std::uint64_t Checksum(const Page& page);

  mutable std::mutex mu_;  // guards pages_ and checksums_
  std::vector<Page> pages_;
  std::vector<std::uint64_t> checksums_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::uint64_t> read_delay_nanos_{0};
  std::atomic<FaultHook*> fault_hook_{nullptr};
};

}  // namespace tsq::storage

#endif  // TSQ_STORAGE_PAGE_FILE_H_
