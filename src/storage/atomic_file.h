#ifndef TSQ_STORAGE_ATOMIC_FILE_H_
#define TSQ_STORAGE_ATOMIC_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/fault_injection.h"

namespace tsq::storage {

/// Identity of a file's byte content: length plus FNV-1a-64 hash. The
/// checkpoint manifest records one digest per file and LoadFrom recomputes
/// them before trusting anything, so a torn or bit-flipped checkpoint file
/// can never be mistaken for the one that was written.
struct FileDigest {
  std::uint64_t size = 0;
  std::uint64_t fnv1a = 0xCBF29CE484222325ull;  // FNV offset basis

  /// Folds `size` more bytes into the running hash.
  void Update(const void* data, std::size_t count);

  bool operator==(const FileDigest&) const = default;
};

/// Reads `path` back and digests its bytes — the load-side counterpart of
/// AtomicFile::digest(). IoError when the file cannot be opened.
Result<FileDigest> DigestFile(const std::string& path);

/// fsyncs the directory containing `path`, making a rename into that
/// directory durable. Best-effort on filesystems that reject directory
/// fsync; real I/O errors are returned.
Status SyncParentDir(const std::string& path);

/// Crash-safe file writer: all content goes to `<path>.tmp` through a POSIX
/// fd, Commit() flushes and fsyncs the data, renames the temp file onto
/// `path` and fsyncs the parent directory. A crash (or error) at any step
/// leaves either the complete old file or the complete new file at `path` —
/// never a torn mix — plus at most a stale `.tmp` orphan that recovery
/// ignores.
///
/// Every step consults the optional FaultHook's OnWrite ("create", one
/// "append" per Append call, "sync", "rename", "dirsync"). An injected crash
/// returns the hook's status and deliberately leaves the temp file behind,
/// exactly as the real crash it simulates would; the destructor cleans up
/// only after genuine errors and abandoned writers.
class AtomicFile {
 public:
  /// Prepares a writer for `path`; no filesystem activity until Open().
  explicit AtomicFile(std::string path, FaultHook* hook = nullptr);

  /// Unlinks the temp file when the writer was opened but never committed —
  /// unless an injected crash happened, in which case the torn state is the
  /// point and stays on disk.
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// Creates (truncating) `<path>.tmp`.
  Status Open();

  /// Appends raw bytes; the running digest covers exactly the appended
  /// bytes in order.
  Status Append(const void* data, std::size_t size);
  Status Append(std::string_view text) {
    return Append(text.data(), text.size());
  }

  /// fsync + close + rename into place + parent directory fsync. After an
  /// OK return the new content is durably at `path`.
  Status Commit();

  /// Digest of everything appended so far (the manifest entry for this
  /// file once Commit() succeeded).
  const FileDigest& digest() const { return digest_; }

  const std::string& path() const { return path_; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  /// Consults the fault hook for `step`; a crash marks the writer so no
  /// cleanup happens.
  Status Consult(const char* step);
  void CloseFd();

  std::string path_;
  std::string temp_path_;
  FaultHook* hook_;
  int fd_ = -1;
  bool committed_ = false;
  bool crashed_ = false;
  FileDigest digest_;
};

}  // namespace tsq::storage

#endif  // TSQ_STORAGE_ATOMIC_FILE_H_
