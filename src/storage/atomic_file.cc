#include "storage/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

namespace tsq::storage {

namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

std::string ParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void FileDigest::Update(const void* data, std::size_t count) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t hash = fnv1a;
  for (std::size_t i = 0; i < count; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ull;
  }
  fnv1a = hash;
  size += count;
}

Result<FileDigest> DigestFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot open", path));
  FileDigest digest;
  std::vector<std::uint8_t> buffer(1 << 16);
  for (;;) {
    const ssize_t n = ::read(fd, buffer.data(), buffer.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IoError(ErrnoMessage("read failed", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    digest.Update(buffer.data(), static_cast<std::size_t>(n));
  }
  ::close(fd);
  return digest;
}

Status SyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    // Some filesystems refuse to open directories for fsync; the rename
    // itself already happened, so treat this as best-effort.
    return Status::Ok();
  }
  Status status = Status::Ok();
  if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
    status = Status::IoError(ErrnoMessage("directory fsync failed", dir));
  }
  ::close(fd);
  return status;
}

AtomicFile::AtomicFile(std::string path, FaultHook* hook)
    : path_(std::move(path)), temp_path_(path_ + ".tmp"), hook_(hook) {}

AtomicFile::~AtomicFile() {
  CloseFd();
  if (!committed_ && !crashed_) {
    // A real (non-injected) failure or an abandoned writer: the temp file
    // carries no commitment, drop it.
    std::remove(temp_path_.c_str());
  }
}

Status AtomicFile::Consult(const char* step) {
  if (hook_ == nullptr) return Status::Ok();
  WriteFaultDecision decision = hook_->OnWrite(step);
  if (!decision.crash) return Status::Ok();
  crashed_ = true;
  CloseFd();
  if (decision.status.ok()) {
    return Status::IoError(std::string("injected crash at step '") + step +
                           "' writing " + path_);
  }
  return decision.status;
}

void AtomicFile::CloseFd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status AtomicFile::Open() {
  TSQ_RETURN_IF_ERROR(Consult("create"));
  fd_ = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    return Status::IoError(ErrnoMessage("cannot create", temp_path_));
  }
  return Status::Ok();
}

Status AtomicFile::Append(const void* data, std::size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("AtomicFile not open");
  TSQ_RETURN_IF_ERROR(Consult("append"));
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, bytes + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write failed", temp_path_));
    }
    written += static_cast<std::size_t>(n);
  }
  digest_.Update(data, size);
  return Status::Ok();
}

Status AtomicFile::Commit() {
  if (fd_ < 0) return Status::FailedPrecondition("AtomicFile not open");
  TSQ_RETURN_IF_ERROR(Consult("sync"));
  if (::fsync(fd_) != 0) {
    return Status::IoError(ErrnoMessage("fsync failed", temp_path_));
  }
  CloseFd();
  TSQ_RETURN_IF_ERROR(Consult("rename"));
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("rename failed", temp_path_));
  }
  // From here the new file is at `path_` whether or not the directory sync
  // below lands — a crash can only lose the *rename*, reverting to the old
  // complete file, never tear the content.
  committed_ = true;
  TSQ_RETURN_IF_ERROR(Consult("dirsync"));
  return SyncParentDir(path_);
}

}  // namespace tsq::storage
