#ifndef TSQ_STORAGE_FAULT_INJECTION_H_
#define TSQ_STORAGE_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace tsq::storage {

/// What a FaultHook asks a storage read to inject. The default-constructed
/// decision injects nothing, so hooks only describe the unusual case.
struct FaultDecision {
  enum class Action {
    kNone,          ///< Serve the read normally.
    kFail,          ///< Return `status` without touching the page.
    kCorruptBytes,  ///< Flip a byte of the page as it is "read off disk".
    kShortRead,     ///< Torn read: only the first `valid_bytes` arrive.
  };

  Action action = Action::kNone;

  /// The error returned for kFail. Must be non-OK when action == kFail.
  Status status;

  /// For kCorruptBytes: which byte of the page to flip (taken mod page size).
  std::size_t byte_offset = 0;

  /// For kShortRead: how many leading bytes of the page are delivered; the
  /// remainder arrives as zeros, as if the transfer was cut off.
  std::size_t valid_bytes = 0;

  /// Extra simulated latency for this read, on top of the file's configured
  /// read delay. Applies to every action, including kNone.
  std::uint64_t delay_nanos = 0;
};

/// What a FaultHook asks a checkpoint write step to inject. A crash decision
/// simulates the process dying at that step: the writer returns `status`
/// immediately and leaves everything already on disk exactly as it is — no
/// cleanup, no rollback — which is what a recovery test needs to see.
struct WriteFaultDecision {
  bool crash = false;

  /// The error returned for a crash. A default (OK) status is replaced by a
  /// generic IoError naming the step.
  Status status;
};

/// Fault-injection hook consulted by PageFile::Read and BufferPool::Read,
/// and — through OnWrite — by every step of the atomic checkpoint writer.
///
/// The hook is installed with SetFaultHook (an atomic pointer swap) and is
/// consulted once per read with the page id being served. Implementations
/// must be thread-safe: reads are issued concurrently from executor worker
/// threads. The hook's owner must keep it alive until it has been uninstalled
/// (SetFaultHook(nullptr)) and all in-flight reads have drained.
///
/// Corruption and short-read injections in PageFile mutate the page *as
/// delivered*, not the stored copy, and then run the normal checksum
/// verification — so they exercise the real detection path and the file
/// stays healthy for subsequent reads.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Decides what to inject into the read of `page_id`.
  virtual FaultDecision OnRead(std::uint32_t page_id) = 0;

  /// Decides whether to "crash" the write path at the named step
  /// ("create", "append", "sync", "rename", "dirsync", "gc" — see
  /// storage::AtomicFile and SimilarityEngine::SaveTo). Called once per
  /// step in save order, so a policy that crashes at the k-th call sweeps
  /// every torn on-disk state a real crash could leave. The default injects
  /// nothing, keeping read-only hooks source-compatible.
  virtual WriteFaultDecision OnWrite(const char* step) {
    (void)step;
    return WriteFaultDecision{};
  }
};

}  // namespace tsq::storage

#endif  // TSQ_STORAGE_FAULT_INJECTION_H_
