#ifndef TSQ_STORAGE_BUFFER_POOL_H_
#define TSQ_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/fault_injection.h"
#include "storage/page_file.h"

namespace tsq::storage {

/// Cache statistics. `misses` equals the number of physical page reads the
/// pool issued against the backing file (including reads that then failed,
/// so under the PageFile convention of counting successful I/Os only,
/// `misses >= file reads attributable to the pool`). `coalesced` counts
/// reads that joined another thread's in-flight miss on the same page and
/// therefore cost no physical read of their own; every pool Read is exactly
/// one of hit, miss or coalesced.
struct BufferPoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t coalesced = 0;
};

/// A sharded LRU buffer pool over a PageFile.
///
/// Executors can run either directly against the PageFile (cold reads, the
/// accounting the paper's experiments use) or through a pool to study how
/// caching changes the disk-access picture. Pages are read-mostly in this
/// workload; writes go through the pool and are written back immediately
/// (write-through), keeping recovery concerns out of scope.
///
/// Thread safety and sharding: the pool is split into `shard_count()` shards
/// keyed by `PageId % shard_count()` (page ids are allocated densely, so
/// modulo striping spreads a dense working set perfectly evenly and a pool
/// sized to the file never evicts); each shard has its own mutex, LRU list,
/// entry map and counters, so concurrent readers of different pages rarely
/// contend. On a hit only the owning shard's mutex is taken (reads mutate
/// LRU order). On a miss the shard lock is *dropped* while the backing-file
/// read (and its simulated latency spin) is in flight; an in-flight table
/// per shard coalesces concurrent misses on the same page into one physical
/// read — followers block on the leader's result instead of issuing their
/// own. Lock order is strictly shard mutex -> PageFile mutex (via
/// PageFile::Read/Write); no code path acquires a shard mutex while holding
/// the file mutex or another shard's mutex, except Clear()/stats()/
/// cached_pages()/ResetStats() which take shard mutexes one at a time in
/// index order.
///
/// A Write that lands while a read of the same page is in flight marks the
/// in-flight read superseded: the leader then discards its (older) page
/// instead of clobbering the fresher cached copy. Followers of that read
/// still observe the pre-write page, which is linearizable — their read
/// began before the write completed.
class BufferPool {
 public:
  /// Default shard count (capped by `capacity` so that the per-shard
  /// capacities always sum to exactly `capacity`).
  static constexpr std::size_t kDefaultShards = 8;

  /// Creates a pool holding at most `capacity` pages total, split over
  /// `shards` shards (0 = kDefaultShards). The effective shard count is
  /// clamped to [1, capacity] and `capacity` is distributed as evenly as
  /// possible (shards differ by at most one page). Requires capacity >= 1.
  explicit BufferPool(PageFile* file, std::size_t capacity,
                      std::size_t shards = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Reads `id` through the cache.
  Status Read(PageId id, Page* out);

  /// Write-through: updates both the cache entry and the backing file.
  Status Write(PageId id, const Page& page);

  /// Drops every cached page (e.g. between benchmark queries to model a cold
  /// cache). Reads in flight when Clear runs are marked superseded so they
  /// do not repopulate the pool behind it; for exact accounting, call it
  /// with no concurrent readers.
  void Clear();

  /// Snapshot of the counters, aggregated over all shards (each shard is
  /// locked in turn; the total is not a consistent cut under concurrent
  /// I/O).
  BufferPoolStats stats() const;
  void ResetStats();

  std::size_t cached_pages() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }
  /// Capacity of shard `s` (the per-shard capacities sum to capacity()).
  std::size_t shard_capacity(std::size_t s) const {
    return shards_[s].capacity;
  }
  /// The shard `id` maps to — deterministic, exposed for tests that need to
  /// construct same-shard or distinct-shard page sets.
  std::size_t ShardOf(PageId id) const;

  /// Installs (or, with nullptr, removes) a fault-injection hook consulted
  /// at the top of every pool Read, before the shard lock is taken — so an
  /// injected failure models an error in the caching layer itself (hits
  /// included) and always leaves the shard's entries, LRU and in-flight
  /// table untouched. Misses additionally pass through the backing file's
  /// own hook, if one is installed there. The caller must keep the hook
  /// alive until it is uninstalled and in-flight reads have drained.
  void SetFaultHook(FaultHook* hook) {
    fault_hook_.store(hook, std::memory_order_release);
  }

 private:
  struct Entry {
    Page page;
    std::list<PageId>::iterator lru_position;
  };

  /// One thread's pending physical read, shared with coalesced followers.
  /// `done`/`status`/`page` are published under `mu` + `cv`; `superseded` is
  /// only touched under the owning shard's mutex.
  struct InFlightRead {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    Page page;
    bool superseded = false;
  };

  struct Shard {
    mutable std::mutex mu;  // guards entries, lru, in_flight, stats
    std::size_t capacity = 0;
    std::unordered_map<PageId, Entry> entries;
    std::list<PageId> lru;  // front = most recently used
    std::unordered_map<PageId, std::shared_ptr<InFlightRead>> in_flight;
    BufferPoolStats stats;
  };

  static void Touch(Shard& shard, Entry& entry, PageId id);
  static void InsertAndMaybeEvict(Shard& shard, PageId id, const Page& page);

  PageFile* file_;
  const std::size_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<FaultHook*> fault_hook_{nullptr};
};

}  // namespace tsq::storage

#endif  // TSQ_STORAGE_BUFFER_POOL_H_
