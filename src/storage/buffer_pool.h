#ifndef TSQ_STORAGE_BUFFER_POOL_H_
#define TSQ_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "storage/page_file.h"

namespace tsq::storage {

/// Cache statistics. `misses` equals the number of physical page reads the
/// pool issued against the backing file.
struct BufferPoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// A simple LRU buffer pool over a PageFile.
///
/// Executors can run either directly against the PageFile (cold reads, the
/// accounting the paper's experiments use) or through a pool to study how
/// caching changes the disk-access picture. Pages are read-mostly in this
/// workload; writes go through the pool and are written back immediately
/// (write-through), keeping recovery concerns out of scope.
///
/// Thread safety: every public method takes an internal mutex (even reads
/// mutate LRU order), so concurrent query threads may share one pool. The
/// mutex is held across the backing-file read on a miss, which serializes
/// misses — a single LRU list cannot admit two pages race-free anyway;
/// sharding the pool by page id is the planned lock-splitting step.
class BufferPool {
 public:
  /// Creates a pool holding at most `capacity` pages. Requires capacity >= 1.
  BufferPool(PageFile* file, std::size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Reads `id` through the cache.
  Status Read(PageId id, Page* out);

  /// Write-through: updates both the cache entry and the backing file.
  Status Write(PageId id, const Page& page);

  /// Drops every cached page (e.g. between benchmark queries to model a cold
  /// cache).
  void Clear();

  /// Snapshot of the counters.
  BufferPoolStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = BufferPoolStats{};
  }

  std::size_t cached_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    Page page;
    std::list<PageId>::iterator lru_position;
  };

  void Touch(Entry& entry, PageId id);
  void InsertAndMaybeEvict(PageId id, const Page& page);

  PageFile* file_;
  const std::size_t capacity_;
  mutable std::mutex mu_;  // guards entries_, lru_ and stats_
  std::unordered_map<PageId, Entry> entries_;
  std::list<PageId> lru_;  // front = most recently used
  BufferPoolStats stats_;
};

}  // namespace tsq::storage

#endif  // TSQ_STORAGE_BUFFER_POOL_H_
