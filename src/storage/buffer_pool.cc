#include "storage/buffer_pool.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "obs/metrics.h"

namespace tsq::storage {

namespace {
// Process-wide counters summed over every pool; the per-shard stats_ stay
// the per-instance (resettable) numbers benchmarks read through stats().
struct PoolMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* coalesced;
  obs::Counter* evictions;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return PoolMetrics{registry.counter("storage.buffer_pool.hits"),
                         registry.counter("storage.buffer_pool.misses"),
                         registry.counter("storage.buffer_pool.coalesced"),
                         registry.counter("storage.buffer_pool.evictions")};
    }();
    return metrics;
  }
};
}  // namespace

BufferPool::BufferPool(PageFile* file, std::size_t capacity,
                       std::size_t shards)
    : file_(file),
      capacity_(capacity),
      shards_(std::max<std::size_t>(
          1, std::min(shards == 0 ? kDefaultShards : shards, capacity))) {
  TSQ_CHECK(file != nullptr);
  TSQ_CHECK_GE(capacity, std::size_t{1});
  // Distribute the capacity as evenly as possible; the per-shard capacities
  // sum to exactly `capacity`, so total occupancy never exceeds it.
  const std::size_t base = capacity_ / shards_.size();
  const std::size_t remainder = capacity_ % shards_.size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].capacity = base + (s < remainder ? 1 : 0);
  }
}

std::size_t BufferPool::ShardOf(PageId id) const {
  // PageFile allocates ids densely from 0, so plain modulo striping spreads
  // any dense working set perfectly evenly: a pool whose capacity covers
  // the file never evicts, regardless of the shard count. A mixing hash
  // would skew dense id ranges and make per-shard capacity overflow while
  // the pool as a whole had room.
  return static_cast<std::size_t>(id % shards_.size());
}

void BufferPool::Touch(Shard& shard, Entry& entry, PageId id) {
  shard.lru.erase(entry.lru_position);
  shard.lru.push_front(id);
  entry.lru_position = shard.lru.begin();
}

void BufferPool::InsertAndMaybeEvict(Shard& shard, PageId id,
                                     const Page& page) {
  if (shard.entries.size() >= shard.capacity) {
    const PageId victim = shard.lru.back();
    shard.lru.pop_back();
    shard.entries.erase(victim);
    ++shard.stats.evictions;
    PoolMetrics::Get().evictions->Increment();
  }
  shard.lru.push_front(id);
  shard.entries[id] = Entry{page, shard.lru.begin()};
}

Status BufferPool::Read(PageId id, Page* out) {
  if (FaultHook* hook = fault_hook_.load(std::memory_order_acquire)) {
    const FaultDecision fault = hook->OnRead(id);
    if (fault.delay_nanos > 0) {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::nanoseconds(fault.delay_nanos);
      while (std::chrono::steady_clock::now() < until) {
        // Simulated cache-layer latency, paid outside every lock.
      }
    }
    // The hook runs before the shard lock: an injected failure models an
    // error in the caching layer itself (it can hit cached pages too) and
    // by construction leaves the shard's entries/LRU/in-flight state and
    // the backing file untouched.
    switch (fault.action) {
      case FaultDecision::Action::kNone:
        break;
      case FaultDecision::Action::kFail:
        return fault.status.ok() ? Status::IoError("injected pool fault")
                                 : fault.status;
      case FaultDecision::Action::kCorruptBytes:
        return Status::Corruption("injected corruption in buffer pool read");
      case FaultDecision::Action::kShortRead:
        return Status::IoError("injected short read in buffer pool read");
    }
  }
  Shard& shard = shards_[ShardOf(id)];
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it != shard.entries.end()) {
    ++shard.stats.hits;
    PoolMetrics::Get().hits->Increment();
    Touch(shard, it->second, id);
    *out = it->second.page;
    return Status::Ok();
  }

  auto flight = shard.in_flight.find(id);
  if (flight != shard.in_flight.end()) {
    // Another thread is already reading this page; wait for its result
    // instead of issuing a duplicate physical read.
    std::shared_ptr<InFlightRead> read = flight->second;
    ++shard.stats.coalesced;
    PoolMetrics::Get().coalesced->Increment();
    lock.unlock();
    std::unique_lock<std::mutex> wait_lock(read->mu);
    read->cv.wait(wait_lock, [&read] { return read->done; });
    if (!read->status.ok()) return read->status;
    *out = read->page;
    return Status::Ok();
  }

  // Leader: register the in-flight read, then drop the shard lock for the
  // duration of the physical read so other pages in this shard stay
  // servable (and the simulated latency spins of concurrent misses overlap).
  auto read = std::make_shared<InFlightRead>();
  shard.in_flight.emplace(id, read);
  ++shard.stats.misses;
  PoolMetrics::Get().misses->Increment();
  lock.unlock();

  Status status = file_->Read(id, &read->page);

  lock.lock();
  shard.in_flight.erase(id);
  // A Write (or Clear) that ran while the read was in flight supersedes the
  // bytes we just read; admit the page only if nothing newer exists.
  if (status.ok() && !read->superseded &&
      shard.entries.find(id) == shard.entries.end()) {
    InsertAndMaybeEvict(shard, id, read->page);
  }
  lock.unlock();

  {
    std::lock_guard<std::mutex> publish(read->mu);
    read->done = true;
    read->status = status;
  }
  read->cv.notify_all();

  if (!status.ok()) return status;
  *out = read->page;
  return Status::Ok();
}

Status BufferPool::Write(PageId id, const Page& page) {
  Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  TSQ_RETURN_IF_ERROR(file_->Write(id, page));
  auto flight = shard.in_flight.find(id);
  if (flight != shard.in_flight.end()) {
    flight->second->superseded = true;
  }
  auto it = shard.entries.find(id);
  if (it != shard.entries.end()) {
    it->second.page = page;
    Touch(shard, it->second, id);
  } else {
    InsertAndMaybeEvict(shard, id, page);
  }
  return Status::Ok();
}

void BufferPool::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.lru.clear();
    for (auto& [id, read] : shard.in_flight) {
      read->superseded = true;
    }
  }
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
    total.coalesced += shard.stats.coalesced;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.stats = BufferPoolStats{};
  }
}

std::size_t BufferPool::cached_pages() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace tsq::storage
