#include "storage/buffer_pool.h"

#include "common/check.h"

namespace tsq::storage {

BufferPool::BufferPool(PageFile* file, std::size_t capacity)
    : file_(file), capacity_(capacity) {
  TSQ_CHECK(file != nullptr);
  TSQ_CHECK_GE(capacity, std::size_t{1});
}

void BufferPool::Touch(Entry& entry, PageId id) {
  lru_.erase(entry.lru_position);
  lru_.push_front(id);
  entry.lru_position = lru_.begin();
}

void BufferPool::InsertAndMaybeEvict(PageId id, const Page& page) {
  if (entries_.size() >= capacity_) {
    const PageId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(id);
  entries_[id] = Entry{page, lru_.begin()};
}

Status BufferPool::Read(PageId id, Page* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    ++stats_.hits;
    Touch(it->second, id);
    *out = it->second.page;
    return Status::Ok();
  }
  ++stats_.misses;
  TSQ_RETURN_IF_ERROR(file_->Read(id, out));
  InsertAndMaybeEvict(id, *out);
  return Status::Ok();
}

Status BufferPool::Write(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  TSQ_RETURN_IF_ERROR(file_->Write(id, page));
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.page = page;
    Touch(it->second, id);
  } else {
    InsertAndMaybeEvict(id, page);
  }
  return Status::Ok();
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace tsq::storage
