#ifndef TSQ_EXEC_PARALLEL_H_
#define TSQ_EXEC_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/status.h"

namespace tsq::exec {

/// Runs tasks `0 .. count-1` by invoking `fn(task_index)` across at most
/// `num_threads` workers (0 = one per hardware thread). Tasks are claimed in
/// index order; every task runs exactly once regardless of other tasks'
/// failures, so stats accumulated by task bodies are complete even on error.
/// Returns the lowest-task-index non-OK status, or OK.
///
/// When the effective worker count (or `count`) is 1, tasks run inline on
/// the calling thread — same semantics, no thread is ever created. Query
/// executors rely on this: results and counters must not depend on the
/// thread count, only on the task decomposition.
Status ParallelFor(std::size_t num_threads, std::size_t count,
                   const std::function<Status(std::size_t)>& fn);

/// Number of fixed-size chunks covering `count` items (`ceil(count/chunk)`).
/// Chunk boundaries depend only on `count` and `chunk`, never on the thread
/// count — the decomposition invariant behind deterministic parallel query
/// results.
std::size_t ChunkCount(std::size_t count, std::size_t chunk);

/// Half-open item range `[first, last)` of chunk `index`.
struct ChunkRange {
  std::size_t first = 0;
  std::size_t last = 0;
};
ChunkRange ChunkBounds(std::size_t count, std::size_t chunk,
                       std::size_t index);

}  // namespace tsq::exec

#endif  // TSQ_EXEC_PARALLEL_H_
