#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/check.h"
#include "exec/thread_pool.h"

namespace tsq::exec {

Status ParallelFor(std::size_t num_threads, std::size_t count,
                   const std::function<Status(std::size_t)>& fn) {
  if (count == 0) return Status::Ok();
  const std::size_t workers =
      std::min(EffectiveThreads(num_threads), count);
  if (workers <= 1) {
    Status first = Status::Ok();
    for (std::size_t i = 0; i < count; ++i) {
      Status status = fn(i);
      if (!status.ok() && first.ok()) first = std::move(status);
    }
    return first;
  }

  // Errors are rare; keep only the lowest-index failure instead of an
  // O(count) status array (million-item fan-outs should not pay a per-item
  // allocation just to report one error).
  std::mutex error_mu;
  std::size_t first_error_index = count;
  Status first_error;
  std::atomic<std::size_t> next{0};
  {
    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.Submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          Status status = fn(i);
          if (!status.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (i < first_error_index) {
              first_error_index = i;
              first_error = std::move(status);
            }
          }
        }
      });
    }
    // ~ThreadPool drains the queue and joins, so every task has completed
    // (and its writes are visible) once the pool goes out of scope.
  }
  return first_error;
}

std::size_t ChunkCount(std::size_t count, std::size_t chunk) {
  TSQ_CHECK_GE(chunk, std::size_t{1});
  return (count + chunk - 1) / chunk;
}

ChunkRange ChunkBounds(std::size_t count, std::size_t chunk,
                       std::size_t index) {
  ChunkRange range;
  range.first = index * chunk;
  range.last = std::min(count, range.first + chunk);
  return range;
}

}  // namespace tsq::exec
