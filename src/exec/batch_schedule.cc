#include "exec/batch_schedule.h"

#include <mutex>

#include "exec/parallel.h"

namespace tsq::exec {

std::vector<BatchTaskRef> FlattenBatchTasks(
    const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (const std::size_t count : counts) total += count;
  std::vector<BatchTaskRef> tasks;
  tasks.reserve(total);
  for (std::size_t item = 0; item < counts.size(); ++item) {
    for (std::size_t subtask = 0; subtask < counts[item]; ++subtask) {
      tasks.push_back(BatchTaskRef{item, subtask});
    }
  }
  return tasks;
}

std::vector<Status> ParallelForBatch(
    std::size_t num_threads, const std::vector<std::size_t>& counts,
    const std::function<Status(std::size_t item, std::size_t subtask)>& fn) {
  const std::vector<BatchTaskRef> tasks = FlattenBatchTasks(counts);
  std::vector<Status> statuses(counts.size(), Status::Ok());
  // first_bad[i] = lowest failing subtask index of item i seen so far; the
  // winning status is chosen by subtask index, not completion order, so the
  // aggregate is the same for every thread count.
  std::vector<std::size_t> first_bad(counts.size(), SIZE_MAX);
  std::mutex mu;
  // The outer ParallelFor never sees a failure: per-item statuses are
  // captured here, so no item can cut another item's subtasks short (it
  // could not anyway — ParallelFor runs every task — but the aggregation
  // must also stay per-item).
  (void)ParallelFor(num_threads, tasks.size(), [&](std::size_t index) {
    const BatchTaskRef& task = tasks[index];
    Status status = fn(task.item, task.subtask);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      if (task.subtask < first_bad[task.item]) {
        first_bad[task.item] = task.subtask;
        statuses[task.item] = std::move(status);
      }
    }
    return Status::Ok();
  });
  return statuses;
}

}  // namespace tsq::exec
