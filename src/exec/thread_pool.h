#ifndef TSQ_EXEC_THREAD_POOL_H_
#define TSQ_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tsq::exec {

/// Number of worker threads a request for `requested` resolves to: the value
/// itself, or the hardware concurrency (at least 1) when `requested` is 0.
std::size_t EffectiveThreads(std::size_t requested);

/// A small fixed-size worker pool: `Submit` enqueues a task, workers drain
/// the queue in FIFO order, and the destructor waits for every submitted
/// task to finish before joining.
///
/// The pool makes no fairness or ordering promises beyond FIFO dispatch;
/// callers that need per-task results or error collection should use the
/// helpers in exec/parallel.h, which layer deterministic merging on top.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 resolves via EffectiveThreads).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tsq::exec

#endif  // TSQ_EXEC_THREAD_POOL_H_
