#include "exec/thread_pool.h"

namespace tsq::exec {

std::size_t EffectiveThreads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t count = EffectiveThreads(num_threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even while stopping so that every task submitted
      // before destruction runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace tsq::exec
