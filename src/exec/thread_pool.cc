#include "exec/thread_pool.h"

#include "obs/metrics.h"

namespace tsq::exec {

namespace {
// Pool instruments, shared by every pool in the process (pools are
// per-query-scoped, so per-instance instruments would churn the registry).
struct PoolMetrics {
  obs::Counter* workers_started;
  obs::Counter* tasks_run;
  obs::Gauge* queue_depth;
  obs::Histogram* queue_depth_on_submit;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return PoolMetrics{
          registry.counter("exec.pool.workers_started"),
          registry.counter("exec.pool.tasks_run"),
          registry.gauge("exec.pool.queue_depth"),
          registry.histogram("exec.pool.queue_depth_on_submit")};
    }();
    return metrics;
  }
};
}  // namespace

std::size_t EffectiveThreads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t count = EffectiveThreads(num_threads);
  PoolMetrics::Get().workers_started->Increment(count);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  const PoolMetrics& metrics = PoolMetrics::Get();
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_.size();  // depth seen by this submission, pre-enqueue
    queue_.push_back(std::move(task));
  }
  metrics.queue_depth_on_submit->Observe(depth);
  metrics.queue_depth->Add(1);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  const PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even while stopping so that every task submitted
      // before destruction runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    metrics.queue_depth->Add(-1);
    task();
    metrics.tasks_run->Increment();
  }
}

}  // namespace tsq::exec
