#ifndef TSQ_EXEC_BATCH_SCHEDULE_H_
#define TSQ_EXEC_BATCH_SCHEDULE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"

namespace tsq::exec {

/// One task of a flattened batch: subtask `subtask` of item `item`. Batch
/// execution runs many per-item task lists (one list per query) through one
/// ParallelFor, so slow items steal workers from fast ones instead of each
/// item fanning out alone.
struct BatchTaskRef {
  std::size_t item = 0;
  std::size_t subtask = 0;
};

/// Flattens per-item subtask counts into one task list, item-major:
/// item 0's subtasks in order, then item 1's, ... The order is part of the
/// determinism contract — batch executors merge per-item results in
/// flattened-task order, which must equal the order the item's solo
/// execution would have used.
std::vector<BatchTaskRef> FlattenBatchTasks(
    const std::vector<std::size_t>& counts);

/// ParallelFor over a flattened batch. `fn(item, subtask)` statuses are
/// aggregated *per item*: entry i of the returned vector is the
/// lowest-subtask-index non-OK status of item i (or OK). Every subtask runs
/// regardless of failures — including failures of other items, so one item's
/// fault never truncates a co-batched item's work. The per-item aggregation
/// mirrors what item i's solo ParallelFor would have returned.
std::vector<Status> ParallelForBatch(
    std::size_t num_threads, const std::vector<std::size_t>& counts,
    const std::function<Status(std::size_t item, std::size_t subtask)>& fn);

}  // namespace tsq::exec

#endif  // TSQ_EXEC_BATCH_SCHEDULE_H_
