#include "core/index.h"

#include "common/check.h"

namespace tsq::core {

SequenceIndex::SequenceIndex(const Dataset& dataset,
                             rstar::TreeOptions options)
    : dataset_(&dataset), options_(options) {
  tree_ = std::make_unique<rstar::RStarTree>(
      &index_file_, dataset.layout().dimensions(), options);
  // STR bulk load: near-full, well-clustered nodes, built in O(n log n).
  std::vector<rstar::Entry> entries;
  entries.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    entries.push_back(
        rstar::Entry{rstar::Rect::FromPoint(dataset.features(i)), i});
  }
  const Status status = tree_->BulkLoad(std::move(entries));
  TSQ_CHECK(status.ok()) << status.ToString();
  // Build I/O is not part of any query's cost.
  index_file_.ResetStats();
}

Result<std::unique_ptr<SequenceIndex>> SequenceIndex::LoadFrom(
    const Dataset& dataset, rstar::TreeOptions options,
    const std::string& path, storage::PageId root, std::size_t height,
    std::size_t size) {
  std::unique_ptr<SequenceIndex> index(
      new SequenceIndex(dataset, LoadTag{}));
  index->options_ = options;
  TSQ_RETURN_IF_ERROR(index->index_file_.LoadFrom(path));
  index->tree_ = std::make_unique<rstar::RStarTree>(
      &index->index_file_, dataset.layout().dimensions(), options);
  TSQ_RETURN_IF_ERROR(index->tree_->RestoreForLoad(root, height, size));
  index->index_file_.ResetStats();
  return index;
}

Status SequenceIndex::InsertEntry(std::size_t i) {
  if (i >= dataset_->size()) return Status::NotFound("no such sequence id");
  return tree_->Insert(rstar::Rect::FromPoint(dataset_->features(i)), i);
}

Status SequenceIndex::RemoveEntry(std::size_t i) {
  if (i >= dataset_->size()) return Status::NotFound("no such sequence id");
  return tree_->Delete(rstar::Rect::FromPoint(dataset_->features(i)), i);
}

Status SequenceIndex::Rebuild() {
  // Page ids restart from 0 below, so a pool caching the old pages would
  // serve stale bytes for reused ids — drop everything it holds first.
  if (pool_) pool_->Clear();
  index_file_.Clear();
  tree_ = std::make_unique<rstar::RStarTree>(
      &index_file_, dataset_->layout().dimensions(), options_);
  tree_->SetBufferPool(pool_.get());
  std::vector<rstar::Entry> entries;
  entries.reserve(dataset_->active_size());
  for (std::size_t i = 0; i < dataset_->size(); ++i) {
    if (dataset_->removed(i)) continue;
    entries.push_back(
        rstar::Entry{rstar::Rect::FromPoint(dataset_->features(i)), i});
  }
  TSQ_RETURN_IF_ERROR(tree_->BulkLoad(std::move(entries)));
  // Like the constructor: rebuild I/O is not part of any query's cost.
  index_file_.ResetStats();
  return Status::Ok();
}

void SequenceIndex::EnableBufferPool(std::size_t pages, std::size_t shards) {
  if (pages == 0) {
    tree_->SetBufferPool(nullptr);
    pool_.reset();
    return;
  }
  pool_ = std::make_unique<storage::BufferPool>(&index_file_, pages, shards);
  // A hook installed before the pool existed covers the new pool too.
  pool_->SetFaultHook(fault_hook_);
  tree_->SetBufferPool(pool_.get());
}

void SequenceIndex::SetReadFaultHook(storage::FaultHook* hook) {
  fault_hook_ = hook;
  index_file_.SetFaultHook(hook);
  if (pool_) pool_->SetFaultHook(hook);
}

double SequenceIndex::AverageLeafCapacity() const {
  std::size_t leaves = 0;
  std::size_t entries = 0;
  const Status status =
      tree_->VisitNodes([&](const rstar::RStarTree::NodeView& view) {
        if (view.is_leaf) {
          ++leaves;
          entries += view.entries.size();
        }
      });
  TSQ_CHECK(status.ok()) << status.ToString();
  if (leaves == 0) return 0.0;
  return static_cast<double>(entries) / static_cast<double>(leaves);
}

}  // namespace tsq::core
