#include "core/result_cache.h"

#include <cmath>

#include "core/engine.h"
#include "obs/metrics.h"

namespace tsq::core {

namespace {

struct ResultCacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;

  static const ResultCacheMetrics& Get() {
    static const ResultCacheMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return ResultCacheMetrics{
          registry.counter("engine.result_cache.hits"),
          registry.counter("engine.result_cache.misses"),
          registry.counter("engine.result_cache.evictions")};
    }();
    return metrics;
  }
};

// Digest helpers. Every double goes in by bit pattern (so -0.0 != 0.0 and
// the digest is exact), but a non-finite value anywhere in the spec marks
// the key uncacheable: NaN thresholds are rejected by validation and NaN
// query samples make degenerate results — neither may ever be served from
// the cache.
class SpecDigest {
 public:
  explicit SpecDigest(plan::PlanKeyBuilder* key) : key_(key) {}

  bool finite() const { return finite_; }

  void Add(std::uint64_t value) { key_->Add(value); }

  void AddDouble(double value) {
    if (!std::isfinite(value)) finite_ = false;
    key_->AddDouble(value);
  }

  void AddSeries(const ts::Series& series) {
    Add(series.size());
    for (const double v : series) AddDouble(v);
  }

  void AddTransform(const transform::SpectralTransform& t) {
    key_->AddString(t.label());
    Add(t.length());
    for (std::size_t f = 0; f < t.length(); ++f) {
      const dft::Complex m = t.multiplier(f);
      AddDouble(m.real());
      AddDouble(m.imag());
    }
  }

  void AddTransforms(const std::vector<transform::SpectralTransform>& ts) {
    Add(ts.size());
    for (const transform::SpectralTransform& t : ts) AddTransform(t);
  }

  void AddPartition(const transform::Partition& partition) {
    Add(partition.size());
    for (const std::vector<std::size_t>& group : partition) {
      Add(group.size());
      for (const std::size_t t : group) Add(t);
    }
  }

  void AddQueryTransform(
      const std::optional<transform::SpectralTransform>& qt) {
    Add(qt.has_value() ? 1 : 0);
    if (qt.has_value()) AddTransform(*qt);
  }

 private:
  plan::PlanKeyBuilder* key_;
  bool finite_ = true;
};

}  // namespace

ResultCacheKey ComputeResultCacheKey(const QuerySpec& spec,
                                     const ExecOptions& options,
                                     std::uint64_t snapshot_version,
                                     std::uint64_t config_epoch) {
  plan::PlanKeyBuilder key;
  SpecDigest digest(&key);

  if (const auto* range = std::get_if<RangeQuerySpec>(&spec)) {
    digest.Add(0);
    digest.AddSeries(range->query);
    digest.AddDouble(range->epsilon);
    digest.AddTransforms(range->transforms);
    digest.AddPartition(range->partition);
    digest.Add(range->use_ordering ? 1 : 0);
    digest.Add(static_cast<std::uint64_t>(range->target));
    digest.AddQueryTransform(range->query_transform);
  } else if (const auto* knn = std::get_if<KnnQuerySpec>(&spec)) {
    digest.Add(1);
    digest.AddSeries(knn->query);
    digest.Add(knn->k);
    digest.AddTransforms(knn->transforms);
    digest.AddPartition(knn->partition);
    digest.Add(static_cast<std::uint64_t>(knn->target));
    digest.AddQueryTransform(knn->query_transform);
  } else {
    const auto& join = std::get<JoinQuerySpec>(spec);
    digest.Add(2);
    digest.Add(static_cast<std::uint64_t>(join.mode));
    digest.AddDouble(join.min_correlation);
    digest.AddDouble(join.epsilon);
    digest.AddDouble(join.slack);
    digest.AddTransforms(join.transforms);
    digest.AddPartition(join.partition);
  }

  // Execution knobs: everything that changes the bytes of the result —
  // num_threads included, because it lands verbatim in the trace.
  digest.Add(static_cast<std::uint64_t>(options.planner.algorithm));
  digest.Add(options.planner.max_rectangles);
  digest.Add(static_cast<std::uint64_t>(options.planner.partitioning));
  digest.Add(options.planner.cost_constants_override.has_value() ? 1 : 0);
  if (options.planner.cost_constants_override.has_value()) {
    digest.AddDouble(options.planner.cost_constants_override->c_da);
    digest.AddDouble(options.planner.cost_constants_override->c_cmp);
  }
  digest.Add(options.num_threads);
  digest.Add(options.collect_group_stats ? 1 : 0);

  // The engine state the result was computed against.
  digest.Add(snapshot_version);
  digest.Add(config_epoch);

  return ResultCacheKey{digest.finite(), key.key()};
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const QueryResult> ResultCache::Lookup(
    const plan::PlanKey& key) {
  const ResultCacheMetrics& metrics = ResultCacheMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end() || it->second->second.value == nullptr) {
    metrics.misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  metrics.hits->Increment();
  return it->second->second.value;
}

bool ResultCache::Pin(const plan::PlanKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) return false;
  lru_.emplace_front(key, Entry{nullptr, 1});
  map_.emplace(key, lru_.begin());
  EvictLocked();
  return true;
}

void ResultCache::Insert(const plan::PlanKey& key,
                         std::shared_ptr<const QueryResult> value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second.value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(key, Entry{std::move(value), 0});
    map_.emplace(key, lru_.begin());
  }
  EvictLocked();
}

void ResultCache::Unpin(const plan::PlanKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return;
  Entry& entry = it->second->second;
  if (entry.pins > 0) --entry.pins;
  if (entry.pins == 0 && entry.value == nullptr) {
    lru_.erase(it->second);
    map_.erase(it);
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

void ResultCache::EvictLocked() {
  const ResultCacheMetrics& metrics = ResultCacheMetrics::Get();
  auto it = lru_.end();
  while (map_.size() > capacity_ && it != lru_.begin()) {
    --it;
    if (it->second.pins > 0) continue;  // in flight: holds its slot
    map_.erase(it->first);
    it = lru_.erase(it);
    metrics.evictions->Increment();
  }
}

}  // namespace tsq::core
