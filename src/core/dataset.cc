#include "core/dataset.h"

#include "common/check.h"

namespace tsq::core {

Dataset::Dataset(std::vector<ts::Series> raw,
                 transform::FeatureLayout layout)
    : layout_(layout) {
  TSQ_CHECK(!raw.empty());
  length_ = raw.front().size();
  TSQ_CHECK_GE(length_, std::size_t{2});
  plan_ = std::make_unique<dft::FftPlan>(length_);
  records_ = std::make_unique<storage::RecordStore>(&record_file_);

  normals_.reserve(raw.size());
  spectra_.reserve(raw.size());
  features_.reserve(raw.size());
  record_ids_.reserve(raw.size());
  for (const ts::Series& series : raw) {
    // Construction happens before any fault hook can be installed, so the
    // only failure mode here is a real bug.
    const Result<std::size_t> id = Append(series);
    TSQ_CHECK(id.ok()) << id.status().ToString();
  }
  // Loading I/O is not part of any query's cost.
  record_file_.ResetStats();
}

Result<std::size_t> Dataset::Append(const ts::Series& series) {
  TSQ_CHECK_EQ(series.size(), length_)
      << "all series in a dataset must have equal length";
  ts::NormalForm normal = ts::Normalize(series);
  std::vector<dft::Complex> spectrum = plan_->Forward(normal.values);
  // The stored "full database record" is the normal form's spectrum
  // (real/imaginary interleaved). By Parseval (Eq. 8) it carries exactly
  // the information of the normal form itself, and the post-processing
  // step can evaluate transformed distances straight from it without an
  // FFT per candidate fetch.
  ts::Series record(2 * length_);
  for (std::size_t f = 0; f < length_; ++f) {
    record[2 * f] = spectrum[f].real();
    record[2 * f + 1] = spectrum[f].imag();
  }
  // The store write is the one fallible step (it reads the current page, a
  // read an injected fault can fail); everything is pushed only after it
  // succeeded so a failure leaves no trace.
  Result<storage::RecordId> id = records_->AppendSeries(record);
  TSQ_RETURN_IF_ERROR(id.status());
  features_.push_back(ExtractFeatures(normal, spectrum, layout_));
  record_ids_.push_back(*id);
  normals_.push_back(std::move(normal));
  spectra_.push_back(std::move(spectrum));
  removed_.push_back(false);
  ++active_count_;
  return normals_.size() - 1;
}

Status Dataset::MarkRemoved(std::size_t i) {
  if (i >= removed_.size()) {
    return Status::NotFound("no such sequence id");
  }
  if (!removed_[i]) {
    removed_[i] = true;
    --active_count_;
  }
  return Status::Ok();
}

Result<std::unique_ptr<Dataset>> Dataset::LoadFrom(
    const std::string& records_path, transform::FeatureLayout layout,
    std::size_t length, std::vector<SequenceMeta> sequences,
    storage::PageId store_page, std::uint32_t store_cursor) {
  if (length < 2) return Status::InvalidArgument("length must be >= 2");
  std::unique_ptr<Dataset> dataset(new Dataset());
  dataset->layout_ = layout;
  dataset->length_ = length;
  dataset->plan_ = std::make_unique<dft::FftPlan>(length);
  TSQ_RETURN_IF_ERROR(dataset->record_file_.LoadFrom(records_path));
  // Bound every persisted location against the store actually loaded before
  // fetching anything: a corrupted meta row must surface as Corruption, not
  // as whatever a wild page id would do downstream.
  const std::size_t pages = dataset->record_file_.page_count();
  if ((store_page != storage::kInvalidPageId && store_page >= pages) ||
      store_cursor > storage::kPageSize) {
    return Status::Corruption("record store cursor out of range");
  }
  for (const SequenceMeta& meta : sequences) {
    if (meta.record.page >= pages ||
        meta.record.offset >= storage::kPageSize) {
      return Status::Corruption("sequence record id out of range");
    }
  }
  dataset->records_ =
      std::make_unique<storage::RecordStore>(&dataset->record_file_);
  dataset->records_->RestoreForLoad(store_page, store_cursor,
                                    sequences.size());

  dataset->normals_.reserve(sequences.size());
  dataset->spectra_.reserve(sequences.size());
  dataset->features_.reserve(sequences.size());
  dataset->record_ids_.reserve(sequences.size());
  for (const SequenceMeta& meta : sequences) {
    dataset->record_ids_.push_back(meta.record);
    dataset->removed_.push_back(meta.removed);
    if (!meta.removed) ++dataset->active_count_;
    Result<std::vector<dft::Complex>> spectrum =
        dataset->FetchSpectrum(dataset->record_ids_.size() - 1);
    if (!spectrum.ok()) return spectrum.status();
    ts::NormalForm normal;
    normal.values = dataset->plan_->InverseReal(*spectrum);
    normal.mean = meta.mean;
    normal.stddev = meta.stddev;
    dataset->features_.push_back(
        ExtractFeatures(normal, *spectrum, dataset->layout_));
    dataset->normals_.push_back(std::move(normal));
    dataset->spectra_.push_back(std::move(*spectrum));
  }
  dataset->record_file_.ResetStats();
  return dataset;
}

Result<std::vector<dft::Complex>> Dataset::FetchSpectrum(
    std::size_t i, std::uint64_t* pages_read) const {
  // Not a CHECK: the id can come from disk-resident index leaf entries, so
  // a corrupted leaf must surface as a Status through Execute(), not abort.
  if (i >= record_ids_.size()) {
    return Status::OutOfRange("no such sequence id: " + std::to_string(i));
  }
  Result<ts::Series> record = records_->GetSeries(record_ids_[i], pages_read);
  if (!record.ok()) return record.status();
  if (record->size() != 2 * length_) {
    return Status::Corruption("spectrum record has unexpected size");
  }
  std::vector<dft::Complex> spectrum(length_);
  for (std::size_t f = 0; f < length_; ++f) {
    spectrum[f] = dft::Complex((*record)[2 * f], (*record)[2 * f + 1]);
  }
  return spectrum;
}

}  // namespace tsq::core
