#ifndef TSQ_CORE_FEATURE_H_
#define TSQ_CORE_FEATURE_H_

#include <span>
#include <vector>

#include "dft/fft.h"
#include "rstar/rect.h"
#include "transform/feature_layout.h"
#include "transform/feature_transform.h"
#include "ts/normal_form.h"

namespace tsq::core {

/// Extracts the index feature vector of a sequence per the paper's Section 5
/// layout: [mean, stddev,] then (|X_f|, angle(X_f)) for each retained
/// coefficient f of the normal form's spectrum. `spectrum` must be the
/// unitary DFT of `normal.values`.
rstar::Point ExtractFeatures(const ts::NormalForm& normal,
                             std::span<const dft::Complex> spectrum,
                             const transform::FeatureLayout& layout);

/// Builds the query region ("qrect") of Algorithm 1 for one transformation
/// group, sound against Lemma 1:
///
/// The paper's step 2 builds "a search rectangle of width epsilon around q".
/// With non-identity transformations the query's own image moves, so we
/// build the MBR of the transformed query features {t(q) : t in group}
/// (smallest circular interval on angle dimensions) and expand each
/// dimension with a width that provably covers every qualifying candidate:
///
///  * magnitude dims: +- eps_f, by the reverse triangle inequality
///    (||u|-|v|| <= |u-v| <= eps_f), where eps_f = epsilon /
///    sqrt(symmetry weight) is the per-coefficient distance budget;
///  * angle dims: the chord bound |u-v| >= 2 sqrt(|u||v|) |sin(dAngle/2)|
///    gives dAngle <= 2 asin(eps_f / (2 sqrt(max(0, m-eps_f) * m))) with m
///    the smallest transformed query magnitude in the group; the full
///    circle when m <= eps_f;
///  * mean/stddev dims: unbounded (the query constrains normal forms only).
///
/// Intersection tests against this rect must use CircularIntersects.
rstar::Rect BuildQueryRegion(
    const rstar::Point& query_features,
    std::span<const transform::FeatureTransform> group, double epsilon,
    const transform::FeatureLayout& layout);

/// The sound angular half-width described above (radians, in [0, pi]).
double SafeAngleHalfWidth(double epsilon_f, double min_query_magnitude);

}  // namespace tsq::core

#endif  // TSQ_CORE_FEATURE_H_
