#include "core/join_query.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "core/polar_bounds.h"
#include "rstar/join.h"
#include "transform/transform_mbr.h"
#include "ts/distance.h"

namespace tsq::core {

namespace {

Status ValidateSpec(const Dataset& dataset, const JoinQuerySpec& spec) {
  if (spec.transforms.empty()) {
    return Status::InvalidArgument("no transformations in join");
  }
  for (const transform::SpectralTransform& t : spec.transforms) {
    if (t.length() != dataset.length()) {
      return Status::InvalidArgument(
          "transformation length does not match dataset: " + t.label());
    }
  }
  if (spec.mode == JoinMode::kDistance && spec.epsilon < 0.0) {
    return Status::InvalidArgument("negative distance threshold");
  }
  if (spec.mode == JoinMode::kCorrelation && spec.slack <= 0.0) {
    return Status::InvalidArgument("non-positive filter slack");
  }
  return Status::Ok();
}

// True when the pair qualifies under `t`; sets `*value` to the correlation
// or distance accordingly.
bool EvaluatePair(const JoinQuerySpec& spec,
                  const transform::SpectralTransform& t,
                  std::span<const dft::Complex> x,
                  std::span<const dft::Complex> y, double* value) {
  if (spec.mode == JoinMode::kDistance) {
    const double d2 = t.TransformedSquaredDistance(x, y);
    *value = std::sqrt(d2);
    return d2 < spec.epsilon * spec.epsilon;
  }
  *value = TransformedCorrelation(t, x, y);
  return *value >= spec.min_correlation;
}

double FilterEpsilon(const Dataset& dataset, const JoinQuerySpec& spec) {
  if (spec.mode == JoinMode::kDistance) return spec.epsilon;
  return spec.slack * ts::CorrelationToDistanceThreshold(spec.min_correlation,
                                                         dataset.length());
}

}  // namespace

double TransformedCorrelation(const transform::SpectralTransform& t,
                              std::span<const dft::Complex> x,
                              std::span<const dft::Complex> y) {
  TSQ_CHECK_EQ(x.size(), t.length());
  TSQ_CHECK_EQ(y.size(), t.length());
  const std::size_t n = t.length();
  double dot = 0.0, energy_u = 0.0, energy_v = 0.0;
  for (std::size_t f = 0; f < n; ++f) {
    const double gain = std::norm(t.multiplier(f));
    dot += gain * (x[f] * std::conj(y[f])).real();
    energy_u += gain * std::norm(x[f]);
    energy_v += gain * std::norm(y[f]);
  }
  if (energy_u <= 0.0 || energy_v <= 0.0) return 0.0;
  // Both transformed sequences are zero-mean (normal forms have X_0 = 0), so
  // sigma^2 = energy / (n-1) and rho = (dot/n) / (sigma_u * sigma_v).
  return (static_cast<double>(n) - 1.0) * dot /
         (static_cast<double>(n) * std::sqrt(energy_u * energy_v));
}

std::vector<JoinMatch> BruteForceJoinQuery(const Dataset& dataset,
                                           const JoinQuerySpec& spec) {
  std::vector<JoinMatch> matches;
  for (std::size_t a = 0; a < dataset.size(); ++a) {
    if (dataset.removed(a)) continue;
    for (std::size_t b = a + 1; b < dataset.size(); ++b) {
      if (dataset.removed(b)) continue;
      for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
        double value = 0.0;
        if (EvaluatePair(spec, spec.transforms[t], dataset.spectrum(a),
                         dataset.spectrum(b), &value)) {
          matches.push_back(JoinMatch{a, b, t, value});
        }
      }
    }
  }
  return matches;
}

Result<JoinQueryResult> RunJoinQuery(const Dataset& dataset,
                                     const SequenceIndex& index,
                                     const JoinQuerySpec& spec,
                                     Algorithm algorithm) {
  TSQ_RETURN_IF_ERROR(ValidateSpec(dataset, spec));
  const transform::FeatureLayout& layout = dataset.layout();
  JoinQueryResult result;
  QueryStats& stats = result.stats;

  // Spectra fetched from the record store, cached for the whole join (the
  // paper's post-processing would keep candidate records buffered too).
  std::unordered_map<std::size_t, std::vector<dft::Complex>> fetched;
  const auto fetch = [&](std::size_t id)
      -> Result<const std::vector<dft::Complex>*> {
    auto it = fetched.find(id);
    if (it == fetched.end()) {
      Result<std::vector<dft::Complex>> spectrum = dataset.FetchSpectrum(id);
      if (!spectrum.ok()) return spectrum.status();
      it = fetched.emplace(id, std::move(*spectrum)).first;
    }
    return &it->second;
  };

  if (algorithm == Algorithm::kSequentialScan) {
    for (std::size_t a = 0; a < dataset.size(); ++a) {
      if (dataset.removed(a)) continue;
      Result<const std::vector<dft::Complex>*> xa = fetch(a);
      if (!xa.ok()) return xa.status();
      for (std::size_t b = a + 1; b < dataset.size(); ++b) {
        if (dataset.removed(b)) continue;
        Result<const std::vector<dft::Complex>*> xb = fetch(b);
        if (!xb.ok()) return xb.status();
        ++stats.candidates;
        for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
          ++stats.comparisons;
          double value = 0.0;
          if (EvaluatePair(spec, spec.transforms[t], **xa, **xb, &value)) {
            result.matches.push_back(JoinMatch{a, b, t, value});
          }
        }
      }
    }
    stats.record_pages_read = dataset.record_pages();
    stats.output_size = result.matches.size();
    return result;
  }

  transform::Partition partition;
  if (algorithm == Algorithm::kStIndex) {
    partition = transform::PartitionSingletons(spec.transforms.size());
  } else if (spec.partition.empty()) {
    partition = transform::PartitionAll(spec.transforms.size());
  } else {
    partition = spec.partition;
  }

  std::vector<transform::FeatureTransform> feature_transforms;
  feature_transforms.reserve(spec.transforms.size());
  for (const transform::SpectralTransform& t : spec.transforms) {
    feature_transforms.push_back(t.ToFeatureTransform(layout));
  }

  const double filter_eps = FilterEpsilon(dataset, spec);
  const double filter_eps2 = filter_eps * filter_eps;

  for (const std::vector<std::size_t>& group : partition) {
    std::vector<transform::FeatureTransform> group_fts;
    group_fts.reserve(group.size());
    for (const std::size_t t : group) {
      group_fts.push_back(feature_transforms[t]);
    }
    const transform::TransformMbr mbr(group_fts, layout);

    // R-tree self-join with the transformation rectangle applied to both
    // sides before the proximity test; the rectangle application happens
    // once per entry (JoinOptions maps), not once per candidate pair.
    std::vector<std::pair<std::size_t, std::size_t>> candidate_pairs;
    rstar::SearchStats left_stats, right_stats;
    const std::uint64_t record_reads_before = dataset.record_io().reads;
    rstar::JoinOptions join_options;
    join_options.left_map = [&](const rstar::Rect& r) { return mbr.Apply(r); };
    join_options.right_map = join_options.left_map;
    TSQ_RETURN_IF_ERROR(rstar::SpatialJoin(
        index.tree(), index.tree(),
        [&](const rstar::Rect& a, const rstar::Rect& b) {
          return RectPairSquaredDistanceLowerBound(a, b, layout) <=
                 filter_eps2;
        },
        [&](const rstar::Entry& a, const rstar::Entry& b) {
          if (a.id < b.id) candidate_pairs.emplace_back(a.id, b.id);
        },
        &left_stats, &right_stats, join_options));
    ++stats.traversals;
    stats.index_nodes_accessed +=
        left_stats.nodes_accessed + right_stats.nodes_accessed;
    stats.index_leaves_accessed +=
        left_stats.leaf_nodes_accessed + right_stats.leaf_nodes_accessed;
    stats.candidates += candidate_pairs.size();

    for (const auto& [a, b] : candidate_pairs) {
      Result<const std::vector<dft::Complex>*> xa = fetch(a);
      if (!xa.ok()) return xa.status();
      Result<const std::vector<dft::Complex>*> xb = fetch(b);
      if (!xb.ok()) return xb.status();
      for (const std::size_t t : group) {
        ++stats.comparisons;
        double value = 0.0;
        if (EvaluatePair(spec, spec.transforms[t], **xa, **xb, &value)) {
          result.matches.push_back(JoinMatch{a, b, t, value});
        }
      }
    }
    stats.record_pages_read +=
        dataset.record_io().reads - record_reads_before;
  }
  stats.output_size = result.matches.size();
  return result;
}

void SortJoinMatches(std::vector<JoinMatch>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const JoinMatch& x, const JoinMatch& y) {
              if (x.a != y.a) return x.a < y.a;
              if (x.b != y.b) return x.b < y.b;
              return x.transform_index < y.transform_index;
            });
}

}  // namespace tsq::core
