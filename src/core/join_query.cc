#include "core/join_query.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/clock.h"
#include "core/polar_bounds.h"
#include "kernels/kernels.h"
#include "exec/parallel.h"
#include "obs/trace.h"
#include "rstar/join.h"
#include "transform/transform_mbr.h"
#include "ts/distance.h"

namespace tsq::core {

namespace {

// Fixed task granularity — chunk boundaries never depend on num_threads, so
// the merged output is identical for every thread count.
constexpr std::size_t kScanChunk = 256;  // outer sequence ids per scan task
constexpr std::size_t kPairChunk = 32;   // candidate pairs per verify task

Status ValidateSpec(const Dataset& dataset, const JoinQuerySpec& spec) {
  if (spec.transforms.empty()) {
    return Status::InvalidArgument("no transformations in join");
  }
  for (const transform::SpectralTransform& t : spec.transforms) {
    if (t.length() != dataset.length()) {
      return Status::InvalidArgument(
          "transformation length does not match dataset: " + t.label());
    }
  }
  // Negated comparisons so NaN thresholds are rejected too: a NaN epsilon or
  // correlation would make every predicate false while silently reading the
  // whole relation.
  if (spec.mode == JoinMode::kDistance && !(spec.epsilon >= 0.0)) {
    return Status::InvalidArgument("negative or NaN distance threshold");
  }
  if (spec.mode == JoinMode::kCorrelation &&
      !std::isfinite(spec.min_correlation)) {
    return Status::InvalidArgument("non-finite correlation threshold");
  }
  if (spec.mode == JoinMode::kCorrelation && !(spec.slack > 0.0)) {
    return Status::InvalidArgument("non-positive or NaN filter slack");
  }
  return Status::Ok();
}

// True when the pair qualifies under `t`; sets `*value` to the correlation
// or distance accordingly.
bool EvaluatePair(const JoinQuerySpec& spec,
                  const transform::SpectralTransform& t,
                  std::span<const dft::Complex> x,
                  std::span<const dft::Complex> y, double* value) {
  if (spec.mode == JoinMode::kDistance) {
    const double eps2 = spec.epsilon * spec.epsilon;
    // Early-abandons against eps^2: qualifying pairs get the exact distance,
    // rejected ones may get an abandoned partial sum > eps^2, which the
    // strict predicate rejects identically (and *value is unused then).
    const double d2 = t.TransformedSquaredDistanceWithin(x, y, eps2);
    *value = std::sqrt(d2);
    return d2 < eps2;
  }
  *value = TransformedCorrelation(t, x, y);
  return *value >= spec.min_correlation;
}

double FilterEpsilon(const Dataset& dataset, const JoinQuerySpec& spec) {
  if (spec.mode == JoinMode::kDistance) return spec.epsilon;
  return spec.slack * ts::CorrelationToDistanceThreshold(spec.min_correlation,
                                                         dataset.length());
}

}  // namespace

double TransformedCorrelation(const transform::SpectralTransform& t,
                              std::span<const dft::Complex> x,
                              std::span<const dft::Complex> y) {
  TSQ_CHECK_EQ(x.size(), t.length());
  TSQ_CHECK_EQ(y.size(), t.length());
  const std::size_t n = t.length();
  // One fused kernel pass over the interleaved components: per frequency,
  // Re(X conj(Y)) = xr*yr + xi*yi is exactly the component-wise dot, and the
  // |M_f|^2 gains are the transform's cached duplicated weights.
  const kernels::WeightedDotSums sums = kernels::WeightedDotEnergies(
      {reinterpret_cast<const double*>(x.data()), 2 * n},
      {reinterpret_cast<const double*>(y.data()), 2 * n},
      t.component_squared_magnitudes());
  if (sums.energy_x <= 0.0 || sums.energy_y <= 0.0) return 0.0;
  // Both transformed sequences are zero-mean (normal forms have X_0 = 0), so
  // sigma^2 = energy / (n-1) and rho = (dot/n) / (sigma_u * sigma_v).
  return (static_cast<double>(n) - 1.0) * sums.dot /
         (static_cast<double>(n) * std::sqrt(sums.energy_x * sums.energy_y));
}

std::vector<JoinMatch> BruteForceJoinQuery(const Dataset& dataset,
                                           const JoinQuerySpec& spec) {
  std::vector<JoinMatch> matches;
  for (std::size_t a = 0; a < dataset.size(); ++a) {
    if (dataset.removed(a)) continue;
    for (std::size_t b = a + 1; b < dataset.size(); ++b) {
      if (dataset.removed(b)) continue;
      for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
        double value = 0.0;
        if (EvaluatePair(spec, spec.transforms[t], dataset.spectrum(a),
                         dataset.spectrum(b), &value)) {
          matches.push_back(JoinMatch{a, b, t, value});
        }
      }
    }
  }
  return matches;
}

Result<JoinQueryResult> RunJoinQuery(const Dataset& dataset,
                                     const SequenceIndex& index,
                                     const JoinQuerySpec& spec,
                                     const ExecOptions& options,
                                     const transform::Partition*
                                         partition_override) {
  const std::uint64_t query_start = MonotonicNanos();
  TSQ_RETURN_IF_ERROR(RejectUnresolvedAuto(options));
  TSQ_RETURN_IF_ERROR(ValidateSpec(dataset, spec));
  const transform::FeatureLayout& layout = dataset.layout();
  JoinQueryResult result;
  QueryStats& stats = result.stats;
  obs::QueryTrace& trace = result.trace;
  trace.algorithm = AlgorithmName(options.planner.algorithm);
  trace.num_threads = options.num_threads;
  trace.at(obs::Phase::kPlan)
      .AddTask(MonotonicNanos() - query_start, spec.transforms.size());

  if (options.planner.algorithm == Algorithm::kSequentialScan) {
    // A scan join touches every record anyway, so prefetch all spectra once
    // (slices write disjoint slots) and make the pairwise phase pure
    // compute, fanned out over fixed-size slices of the outer id.
    struct PrefetchPart {
      std::uint64_t record_pages = 0;  // pages read by this slice's fetches
      std::uint64_t fetched = 0;
      std::uint64_t nanos = 0;
    };
    std::vector<std::vector<dft::Complex>> spectra(dataset.size());
    const std::size_t slices = exec::ChunkCount(dataset.size(), kScanChunk);
    std::vector<PrefetchPart> prefetch(slices);
    TSQ_RETURN_IF_ERROR(exec::ParallelFor(
        options.num_threads, slices, [&](std::size_t task) -> Status {
          const exec::ChunkRange slice =
              exec::ChunkBounds(dataset.size(), kScanChunk, task);
          PrefetchPart& part = prefetch[task];
          const std::uint64_t start = MonotonicNanos();
          for (std::size_t i = slice.first; i < slice.last; ++i) {
            if (dataset.removed(i)) continue;
            Result<std::vector<dft::Complex>> spectrum =
                dataset.FetchSpectrum(i, &part.record_pages);
            if (!spectrum.ok()) return spectrum.status();
            spectra[i] = std::move(*spectrum);
            ++part.fetched;
          }
          part.nanos = MonotonicNanos() - start;
          return Status::Ok();
        }));
    for (const PrefetchPart& part : prefetch) {
      stats.record_pages_read += part.record_pages;
      trace.at(obs::Phase::kCandidateFetch).AddTask(part.nanos, part.fetched);
    }

    struct ScanPart {
      std::vector<JoinMatch> matches;
      QueryStats stats;
      std::uint64_t nanos = 0;
    };
    std::vector<ScanPart> parts(slices);
    TSQ_RETURN_IF_ERROR(exec::ParallelFor(
        options.num_threads, slices, [&](std::size_t task) -> Status {
          const exec::ChunkRange slice =
              exec::ChunkBounds(dataset.size(), kScanChunk, task);
          ScanPart& part = parts[task];
          const std::uint64_t start = MonotonicNanos();
          for (std::size_t a = slice.first; a < slice.last; ++a) {
            if (dataset.removed(a)) continue;
            for (std::size_t b = a + 1; b < dataset.size(); ++b) {
              if (dataset.removed(b)) continue;
              ++part.stats.candidates;
              for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
                ++part.stats.comparisons;
                double value = 0.0;
                if (EvaluatePair(spec, spec.transforms[t], spectra[a],
                                 spectra[b], &value)) {
                  part.matches.push_back(JoinMatch{a, b, t, value});
                }
              }
            }
          }
          part.nanos = MonotonicNanos() - start;
          return Status::Ok();
        }));
    const std::uint64_t merge_start = MonotonicNanos();
    for (ScanPart& part : parts) {
      result.matches.insert(result.matches.end(), part.matches.begin(),
                            part.matches.end());
      stats += part.stats;
      trace.at(obs::Phase::kVerification)
          .AddTask(part.nanos, part.stats.comparisons);
    }
    stats.output_size = result.matches.size();
    trace.at(obs::Phase::kMerge)
        .AddTask(MonotonicNanos() - merge_start, result.matches.size());
    trace.total_nanos = MonotonicNanos() - query_start;
    return result;
  }

  transform::Partition partition;
  if (options.planner.algorithm == Algorithm::kStIndex) {
    partition = transform::PartitionSingletons(spec.transforms.size());
  } else if (partition_override != nullptr && !partition_override->empty()) {
    partition = *partition_override;
  } else if (spec.partition.empty()) {
    partition = transform::PartitionAll(spec.transforms.size());
  } else {
    partition = spec.partition;
  }

  std::vector<transform::FeatureTransform> feature_transforms;
  feature_transforms.reserve(spec.transforms.size());
  for (const transform::SpectralTransform& t : spec.transforms) {
    feature_transforms.push_back(t.ToFeatureTransform(layout));
  }

  const double filter_eps = FilterEpsilon(dataset, spec);
  const double filter_eps2 = filter_eps * filter_eps;

  // Phase A — one spatial-join task per transformation rectangle, with the
  // rectangle applied to both node rectangles before the proximity test; the
  // rectangle application happens once per entry (JoinOptions maps), not
  // once per candidate pair.
  struct GroupPass {
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    rstar::SearchStats left;
    rstar::SearchStats right;
    std::uint64_t nanos = 0;
  };
  std::vector<GroupPass> passes(partition.size());
  TSQ_RETURN_IF_ERROR(exec::ParallelFor(
      options.num_threads, partition.size(), [&](std::size_t g) -> Status {
        GroupPass& pass = passes[g];
        const std::uint64_t start = MonotonicNanos();
        std::vector<transform::FeatureTransform> group_fts;
        group_fts.reserve(partition[g].size());
        for (const std::size_t t : partition[g]) {
          group_fts.push_back(feature_transforms[t]);
        }
        const transform::TransformMbr mbr(group_fts, layout);
        rstar::JoinOptions join_options;
        join_options.left_map = [&](const rstar::Rect& r) {
          return mbr.Apply(r);
        };
        join_options.right_map = join_options.left_map;
        const Status join_status = rstar::SpatialJoin(
            index.tree(), index.tree(),
            [&](const rstar::Rect& a, const rstar::Rect& b) {
              return RectPairSquaredDistanceLowerBound(a, b, layout) <=
                     filter_eps2;
            },
            [&](const rstar::Entry& a, const rstar::Entry& b) {
              if (a.id < b.id) pass.pairs.emplace_back(a.id, b.id);
            },
            &pass.left, &pass.right, join_options);
        pass.nanos = MonotonicNanos() - start;
        return join_status;
      }));

  // Phase B — verify candidate pairs in fixed-size chunks, group-major.
  // Each chunk keeps its own fetch cache (a page fetched by two chunks is
  // counted by both — the per-chunk cache is what a worker would actually
  // buffer), and the ordered merge reproduces the sequential output.
  struct VerifyTask {
    std::size_t group_index = 0;
    exec::ChunkRange range;
  };
  std::vector<VerifyTask> tasks;
  for (std::size_t g = 0; g < passes.size(); ++g) {
    const std::size_t chunks =
        exec::ChunkCount(passes[g].pairs.size(), kPairChunk);
    for (std::size_t c = 0; c < chunks; ++c) {
      tasks.push_back(VerifyTask{
          g, exec::ChunkBounds(passes[g].pairs.size(), kPairChunk, c)});
    }
  }
  struct VerifyPart {
    std::vector<JoinMatch> matches;
    QueryStats stats;                // comparisons only
    std::uint64_t record_pages = 0;  // pages read by this task's fetches
    std::uint64_t fetched = 0;       // distinct spectra fetched by this task
    std::uint64_t fetch_nanos = 0;
    std::uint64_t verify_nanos = 0;
  };
  std::vector<VerifyPart> parts(tasks.size());
  TSQ_RETURN_IF_ERROR(exec::ParallelFor(
      options.num_threads, tasks.size(), [&](std::size_t ti) -> Status {
        const VerifyTask& task = tasks[ti];
        const GroupPass& pass = passes[task.group_index];
        const std::vector<std::size_t>& group = partition[task.group_index];
        VerifyPart& part = parts[ti];
        std::unordered_map<std::size_t, std::vector<dft::Complex>> fetched;
        const auto fetch = [&](std::size_t id)
            -> Result<const std::vector<dft::Complex>*> {
          auto it = fetched.find(id);
          if (it == fetched.end()) {
            Result<std::vector<dft::Complex>> spectrum =
                dataset.FetchSpectrum(id, &part.record_pages);
            if (!spectrum.ok()) return spectrum.status();
            it = fetched.emplace(id, std::move(*spectrum)).first;
            ++part.fetched;
          }
          return &it->second;
        };
        for (std::size_t c = task.range.first; c < task.range.last; ++c) {
          const auto& [a, b] = pass.pairs[c];
          const std::uint64_t fetch_start = MonotonicNanos();
          Result<const std::vector<dft::Complex>*> xa = fetch(a);
          if (!xa.ok()) return xa.status();
          Result<const std::vector<dft::Complex>*> xb = fetch(b);
          if (!xb.ok()) return xb.status();
          const std::uint64_t verify_start = MonotonicNanos();
          for (const std::size_t t : group) {
            ++part.stats.comparisons;
            double value = 0.0;
            if (EvaluatePair(spec, spec.transforms[t], **xa, **xb, &value)) {
              part.matches.push_back(JoinMatch{a, b, t, value});
            }
          }
          part.fetch_nanos += verify_start - fetch_start;
          part.verify_nanos += MonotonicNanos() - verify_start;
        }
        return Status::Ok();
      }));

  const std::uint64_t merge_start = MonotonicNanos();
  for (VerifyPart& part : parts) {
    result.matches.insert(result.matches.end(), part.matches.begin(),
                          part.matches.end());
    stats += part.stats;
    stats.record_pages_read += part.record_pages;
    trace.at(obs::Phase::kCandidateFetch)
        .AddTask(part.fetch_nanos, part.fetched);
    trace.at(obs::Phase::kVerification)
        .AddTask(part.verify_nanos, part.stats.comparisons);
  }
  for (const GroupPass& pass : passes) {
    ++stats.traversals;
    stats.index_nodes_accessed +=
        pass.left.nodes_accessed + pass.right.nodes_accessed;
    stats.index_leaves_accessed +=
        pass.left.leaf_nodes_accessed + pass.right.leaf_nodes_accessed;
    stats.candidates += pass.pairs.size();
    trace.at(obs::Phase::kIndexTraversal)
        .AddTask(pass.nanos,
                 pass.left.nodes_accessed + pass.right.nodes_accessed);
  }
  stats.output_size = result.matches.size();
  trace.at(obs::Phase::kMerge)
      .AddTask(MonotonicNanos() - merge_start, result.matches.size());
  trace.total_nanos = MonotonicNanos() - query_start;
  return result;
}

Result<JoinQueryResult> RunJoinQuery(const Dataset& dataset,
                                     const SequenceIndex& index,
                                     const JoinQuerySpec& spec,
                                     Algorithm algorithm) {
  ExecOptions options;
  options.planner.algorithm = algorithm;
  options.num_threads = 1;
  return RunJoinQuery(dataset, index, spec, options);
}

void SortJoinMatches(std::vector<JoinMatch>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const JoinMatch& x, const JoinMatch& y) {
              if (x.a != y.a) return x.a < y.a;
              if (x.b != y.b) return x.b < y.b;
              return x.transform_index < y.transform_index;
            });
}

}  // namespace tsq::core
