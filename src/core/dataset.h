#ifndef TSQ_CORE_DATASET_H_
#define TSQ_CORE_DATASET_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/feature.h"
#include "dft/fft.h"
#include "rstar/rect.h"
#include "storage/page_file.h"
#include "storage/record_store.h"
#include "transform/feature_layout.h"
#include "ts/normal_form.h"
#include "ts/series.h"

namespace tsq::core {

/// The "stocks relation" of the paper: a collection of equal-length
/// sequences, each stored in normal form together with its mean and standard
/// deviation (Section 3.2), plus the derived artifacts the query algorithms
/// need:
///
///  * normal-form records packed into a paged RecordStore — the table the
///    sequential scan reads and the post-processing step fetches candidates
///    from, with every touched page counted;
///  * per-sequence index feature vectors (mean, stddev, polar DFT
///    coefficients of the normal form);
///  * in-memory spectra, used by reference/brute-force evaluation in tests
///    and by feature extraction (query executors never read them for data
///    sequences — they fetch records and pay the I/O).
class Dataset {
 public:
  /// Builds from raw series. All series must have the same length >= 2.
  Dataset(std::vector<ts::Series> raw, transform::FeatureLayout layout);

  /// Appends one more sequence (normalizes, stores the record, derives
  /// features) and returns its id. Requires series.size() == length().
  /// Failure-atomic: storing the record reads the store's current page, so
  /// it can fail (e.g. under an injected read fault) — in that case nothing
  /// is appended and the dataset is exactly as before.
  Result<std::size_t> Append(const ts::Series& series);

  /// Tombstones sequence `i`: it stays in the (append-only) record store but
  /// is excluded from every query. Idempotent. NotFound for bad ids.
  Status MarkRemoved(std::size_t i);

  /// True when `i` has been removed.
  bool removed(std::size_t i) const { return removed_[i]; }

  /// Sequences ever loaded (including removed ones); valid id range.
  std::size_t size() const { return normals_.size(); }

  /// Sequences currently live.
  std::size_t active_size() const { return active_count_; }
  std::size_t length() const { return length_; }
  const transform::FeatureLayout& layout() const { return layout_; }
  const dft::FftPlan& plan() const { return *plan_; }

  const ts::NormalForm& normal(std::size_t i) const { return normals_[i]; }
  const std::vector<dft::Complex>& spectrum(std::size_t i) const {
    return spectra_[i];
  }
  const rstar::Point& features(std::size_t i) const { return features_[i]; }

  /// Fetches sequence i's normal form from the record store (counted page
  /// reads) and returns its spectrum. This is what executors use to touch a
  /// "full database record" at the cost the paper's cost model charges.
  /// `pages_read`, when non-null, is incremented by the pages this fetch
  /// touched — per-task accounting for the parallel executor, which cannot
  /// diff the shared record_io() counter.
  Result<std::vector<dft::Complex>> FetchSpectrum(
      std::size_t i, std::uint64_t* pages_read = nullptr) const;

  /// Pages the record store occupies (the sequential scan reads all of
  /// them).
  std::size_t record_pages() const { return record_file_.page_count(); }

  storage::IoStats record_io() const { return record_file_.stats(); }
  void ResetRecordIo() { record_file_.ResetStats(); }

  /// Simulated per-page read latency (see storage::PageFile).
  void set_io_delay_nanos(std::uint64_t nanos) {
    record_file_.set_read_delay_nanos(nanos);
  }

  /// Installs (nullptr removes) a fault-injection hook on the record page
  /// file; every record fetch — sequential scan and candidate verification
  /// alike — passes through it. Not safe concurrently with queries; keep
  /// the hook alive until removed.
  void SetReadFaultHook(storage::FaultHook* hook) {
    record_file_.SetFaultHook(hook);
  }

  // --- persistence (used by SimilarityEngine::SaveTo / LoadFrom) ----------

  /// Writes the record pages to `path` atomically (see PageFile::SaveTo);
  /// `hook` carries the crash-injection schedule, `digest` receives the
  /// written file's manifest entry.
  Status SaveRecordsTo(const std::string& path,
                       storage::FaultHook* hook = nullptr,
                       storage::FileDigest* digest = nullptr) const {
    return record_file_.SaveTo(path, hook, digest);
  }

  storage::RecordId record_id(std::size_t i) const { return record_ids_[i]; }
  const storage::RecordStore& records() const { return *records_; }

  /// Everything beyond the record pages needed to rebuild one sequence's
  /// in-memory state.
  struct SequenceMeta {
    storage::RecordId record;
    bool removed = false;
    double mean = 0.0;
    double stddev = 0.0;
  };

  /// Rebuilds a dataset from a record page file plus per-sequence metadata:
  /// spectra come from the records, normal forms from the inverse DFT,
  /// features from the spectra.
  static Result<std::unique_ptr<Dataset>> LoadFrom(
      const std::string& records_path, transform::FeatureLayout layout,
      std::size_t length, std::vector<SequenceMeta> sequences,
      storage::PageId store_page, std::uint32_t store_cursor);

 private:
  Dataset() = default;  // for LoadFrom

  transform::FeatureLayout layout_;
  std::size_t length_ = 0;
  std::unique_ptr<dft::FftPlan> plan_;
  std::vector<ts::NormalForm> normals_;
  std::vector<std::vector<dft::Complex>> spectra_;
  std::vector<rstar::Point> features_;
  std::vector<bool> removed_;
  std::size_t active_count_ = 0;
  mutable storage::PageFile record_file_;
  std::unique_ptr<storage::RecordStore> records_;
  std::vector<storage::RecordId> record_ids_;
};

}  // namespace tsq::core

#endif  // TSQ_CORE_DATASET_H_
