#ifndef TSQ_CORE_QUERY_SPEC_H_
#define TSQ_CORE_QUERY_SPEC_H_

#include <variant>

#include "core/join_query.h"
#include "core/knn_query.h"
#include "core/range_query.h"

namespace tsq::core {

/// What a query asks, independent of how it is executed — one alternative
/// per query type of the paper (Query 1, k-NN extension, Query 2). Lives in
/// its own header so layers below the engine facade (the planner's batch
/// entry point, the batch executor) can name the union without pulling in
/// engine.h.
using QuerySpec = std::variant<RangeQuerySpec, KnnQuerySpec, JoinQuerySpec>;

}  // namespace tsq::core

#endif  // TSQ_CORE_QUERY_SPEC_H_
