#ifndef TSQ_CORE_QUERY_H_
#define TSQ_CORE_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "transform/partition.h"
#include "transform/spectral_transform.h"
#include "ts/series.h"

namespace tsq::core {

/// The three competitors of the paper's Section 4, plus the cost-based
/// choice among them (Section 5).
enum class Algorithm {
  /// Scan the whole relation, check every transformation against every
  /// sequence.
  kSequentialScan,
  /// One index traversal per transformation ("a Single Transformation at a
  /// time").
  kStIndex,
  /// One index traversal per transformation *rectangle* ("Multiple
  /// Transformations at a time") — the paper's contribution.
  kMtIndex,
  /// Let the engine's planner pick: it enumerates scan, ST and MT plans with
  /// k in {1..max_rectangles} rectangles per partitioning strategy, costs
  /// each with Eq. 18-20 against a snapshot of the index, and runs the
  /// cheapest. Only SimilarityEngine::Execute resolves this value; handing
  /// it to a raw executor is an error.
  kAuto,
};

const char* AlgorithmName(Algorithm algorithm);

/// Constants of the paper's cost function (Section 5.2 uses C_DA = 1 and
/// C_cmp = 0.4 * C_DA: "a sequence comparison takes as much as 40 percent
/// the time of a disk access"). The planner calibrates C_cmp per engine from
/// measured page-read vs comparison latency unless overridden.
struct CostConstants {
  double c_da = 1.0;
  double c_cmp = 0.4;
};

/// Which MT partitionings the planner may enumerate for kAuto. Ignored when
/// a concrete algorithm is forced (forced kMtIndex keeps its legacy
/// behaviour: spec.partition, or one packed rectangle when empty).
enum class PartitioningStrategy {
  /// Enumerate everything below and take the cheapest.
  kAuto,
  /// Only the single packed rectangle (plain MT-index configuration).
  kPacked,
  /// Only contiguous equal splits into k groups (Section 5.2's sweep).
  kContiguous,
  /// Only cluster-aware partitions (the Fig. 9 fix).
  kClustered,
};

/// The planner knobs, consolidated: which algorithm (or kAuto), how many
/// rectangles the enumeration may try, which partitioning family, and an
/// optional override of the calibrated cost constants (deterministic plans
/// for tests and benches).
struct PlannerOptions {
  Algorithm algorithm = Algorithm::kAuto;
  /// Upper bound on the rectangle count k the enumeration sweeps.
  std::size_t max_rectangles = 16;
  PartitioningStrategy partitioning = PartitioningStrategy::kAuto;
  std::optional<CostConstants> cost_constants_override = std::nullopt;
};

/// How a query is executed, independent of *what* is asked (the spec).
struct ExecOptions {
  /// Algorithm / partitioning choice; defaults to the cost-based planner.
  PlannerOptions planner = {};
  /// Worker threads for the parallel executor: 1 (default) runs inline on
  /// the calling thread, 0 means one worker per hardware thread. Results and
  /// summed QueryStats are identical for every value — the task
  /// decomposition (one task per transformation rectangle / traversal /
  /// candidate chunk) is fixed, only the workers executing it vary.
  std::size_t num_threads = 1;
  /// Collect per-rectangle GroupRunStats (range queries; empty otherwise).
  bool collect_group_stats = false;
};

/// InvalidArgument when `options.planner.algorithm` is still kAuto — every
/// raw executor (RunRangeQuery / RunKnnQuery / RunJoinQuery) calls this
/// first; only SimilarityEngine::Execute resolves kAuto into a concrete
/// plan.
Status RejectUnresolvedAuto(const ExecOptions& options);

/// Which side(s) of the distance predicate a transformation applies to.
enum class TransformTarget {
  /// D(t(s), t(q)) — Query 1 exactly as the paper states it. Note that
  /// unitary transformations (time shifts, inversion) leave this distance
  /// unchanged, so they only matter here in composition with others.
  kBoth,
  /// D(t(s), q) — the SIGMOD'97-style semantics: the candidate sequence is
  /// transformed, the query is compared as-is. This is what makes "shift s
  /// days, then compare" queries (Example 1.2) meaningful, and under it the
  /// paper's literal Algorithm 1 step 2 ("a rectangle of width epsilon
  /// around q") is the exact query region.
  kDataOnly,
};

/// Query 1 of the paper: given query sequence q, transformation set T and
/// threshold epsilon, find every (sequence s, transformation t) with
/// D(t(normal(s)), t(normal(q))) < epsilon. Use
/// ts::CorrelationToDistanceThreshold to derive epsilon from a correlation
/// threshold (the paper fixes rho = 0.96).
struct RangeQuerySpec {
  ts::Series query;  // raw; the executor normalizes it
  double epsilon = 0.0;
  std::vector<transform::SpectralTransform> transforms;
  /// How MT-index groups transformations into MBRs; empty = all in one
  /// rectangle. Ignored by the other algorithms.
  transform::Partition partition;
  /// Post-process with binary search when the transformation set forms a
  /// dominance chain (Section 4.4). Only valid with TransformTarget::kBoth
  /// (the chain property is about same-transform distances).
  bool use_ordering = false;
  /// Whether transformations apply to both sequences (the paper's Query 1)
  /// or to the data side only (SIGMOD'97 semantics).
  TransformTarget target = TransformTarget::kBoth;
  /// Optional fixed transformation applied once to the (normalized) query
  /// before the search — the general similarity-query form of Jagadish,
  /// Mendelzon & Milo that the paper implements a special case of. With
  /// kDataOnly this evaluates D(t(s), u(q)); e.g. Example 1.2 is
  /// u = momentum, T = { shift_s o momentum : s in 0..10 }.
  std::optional<transform::SpectralTransform> query_transform;
};

/// One qualifying (sequence, transformation) pair.
struct Match {
  std::size_t series_id = 0;
  std::size_t transform_index = 0;  // position in RangeQuerySpec::transforms
  double distance = 0.0;

  bool operator==(const Match&) const = default;
};

/// Execution counters in the units of the paper's cost model (Eq. 18-20).
struct QueryStats {
  /// Index pages read at any level, summed over traversals: sum DA_all.
  std::uint64_t index_nodes_accessed = 0;
  /// Index pages read at the leaf level: sum DA_leaf.
  std::uint64_t index_leaves_accessed = 0;
  /// Record-store pages read fetching full records.
  std::uint64_t record_pages_read = 0;
  /// (candidate, rectangle) pairs surviving the index filter.
  std::uint64_t candidates = 0;
  /// Full-sequence distance evaluations performed (NT(r) per candidate, or
  /// O(log NT) under an ordering).
  std::uint64_t comparisons = 0;
  /// Number of index traversals (= number of transformation rectangles, or
  /// |T| for ST-index).
  std::uint64_t traversals = 0;
  /// Matches returned.
  std::uint64_t output_size = 0;

  /// Total disk accesses: index pages + record pages.
  std::uint64_t disk_accesses() const {
    return index_nodes_accessed + record_pages_read;
  }

  QueryStats& operator+=(const QueryStats& other);
  bool operator==(const QueryStats&) const = default;
};

/// Result of a range query: qualifying pairs (in no particular order) plus
/// the per-query execution counters and phase trace.
struct RangeQueryResult {
  std::vector<Match> matches;
  QueryStats stats;
  obs::QueryTrace trace;
};

/// Per-rectangle counters, kept so the cost function Ck of Eq. 20 can be
/// evaluated exactly as the paper does in Fig. 8/9.
struct GroupRunStats {
  std::uint64_t da_all = 0;   // index pages read by this rectangle's pass
  std::uint64_t da_leaf = 0;  // ... at the leaf level
  std::uint64_t transforms = 0;  // NT(r)
  std::uint64_t candidates = 0;
};

}  // namespace tsq::core

#endif  // TSQ_CORE_QUERY_H_
