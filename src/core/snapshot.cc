#include "core/snapshot.h"

#include "obs/metrics.h"

namespace tsq::core {

SnapshotManager::SnapshotManager()
    : pins_gauge_(
          obs::MetricsRegistry::Global().gauge("engine.writes.snapshot_pins")) {}

SnapshotManager::ReadPin SnapshotManager::PinRead() const {
  std::unique_lock<std::mutex> lock(mu_);
  // Writer preference: queue behind any waiting writer so a continuous
  // query stream cannot starve Insert/Remove.
  cv_.wait(lock, [this] { return !writer_active_ && waiting_writers_ == 0; });
  ++active_readers_;
  const std::uint64_t version = version_.load(std::memory_order_relaxed);
  lock.unlock();
  pins_gauge_->Add(1);
  return ReadPin(this, version);
}

void SnapshotManager::UnpinRead() const {
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_readers_;
    last = active_readers_ == 0;
  }
  pins_gauge_->Add(-1);
  if (last) cv_.notify_all();  // writers wait for the *last* reader
}

SnapshotManager::ReadPin::~ReadPin() {
  if (manager_ != nullptr) manager_->UnpinRead();
}

SnapshotManager::WriteLock SnapshotManager::LockWrite() {
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_writers_;
  cv_.wait(lock, [this] { return !writer_active_ && active_readers_ == 0; });
  --waiting_writers_;
  writer_active_ = true;
  return WriteLock(this);
}

void SnapshotManager::UnlockWrite() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_active_ = false;
  }
  cv_.notify_all();
}

SnapshotManager::WriteLock::~WriteLock() {
  if (manager_ != nullptr) manager_->UnlockWrite();
}

std::uint64_t SnapshotManager::BumpVersion() {
  // Caller holds the write lock, so no reader can be capturing concurrently;
  // release pairs with the acquire in version() for outside peeks.
  return version_.fetch_add(1, std::memory_order_release) + 1;
}

}  // namespace tsq::core
