#ifndef TSQ_CORE_COST_MODEL_H_
#define TSQ_CORE_COST_MODEL_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/index.h"
#include "core/query.h"
#include "rstar/rect.h"
#include "transform/feature_layout.h"
#include "transform/feature_transform.h"

namespace tsq::core {

// CostConstants lives in core/query.h (ExecOptions::planner carries an
// override of it).

/// The cost function Ck of Eq. 20 evaluated on *measured* per-rectangle
/// counters:
///   Ck = C_DA * sum_i DA_all(q, r_i)
///      + CA_leaf * C_cmp * sum_i DA_leaf(q, r_i) * NT(r_i)
double CostEq20(std::span<const GroupRunStats> groups, double leaf_capacity,
                const CostConstants& constants = CostConstants());

/// Analytic R-tree disk-access estimator in the Kamel-Faloutsos style,
/// extended for transformed traversals: per level, the expected number of
/// node accesses is the node count times the probability that a random node
/// rectangle, *after* application of the transformation MBR, intersects the
/// query window — estimated from per-level average extents and the domain
/// extent. The paper (Section 4.3) observes that estimators ignoring the
/// actual rectangle distribution mispredict the best rectangle count; this
/// one keeps the dependence on the transformation rectangle's size, which is
/// what the cost-based partitioner needs.
class TreeCostEstimator {
 public:
  /// Snapshots per-level statistics of the index (reads every node once).
  /// CHECK-fails when a node read fails; the planner uses Create() instead
  /// so injected storage faults surface as Status.
  explicit TreeCostEstimator(const SequenceIndex& index);

  /// Fallible snapshot: same statistics, but a node-read error is returned
  /// instead of aborting.
  static Result<TreeCostEstimator> Create(const SequenceIndex& index);

  /// Expected page accesses of one traversal with the given transformation
  /// group: models the executor's real filter — the group's transformation
  /// MBR applied to the average node rectangle, intersected with a query
  /// region whose widths follow BuildQueryRegion (reverse-triangle bound on
  /// magnitudes, chord bound on angles, the group's own feature spread on
  /// both) around a typical dataset member as the query proxy. Returns
  /// {expected DA_all, expected DA_leaf}.
  struct Estimate {
    double da_all = 0.0;
    double da_leaf = 0.0;
    /// Expected fraction of indexed points whose transformed image
    /// intersects the query region — the candidate selectivity. Node-level
    /// access counts saturate on small trees (a handful of wide leaves
    /// intersect every region); the per-point probability keeps
    /// discriminating there, and candidates drive both the comparison count
    /// and the record fetches.
    double hit_fraction = 0.0;
  };
  Estimate EstimateTraversal(
      std::span<const transform::FeatureTransform> group, double epsilon,
      const transform::FeatureLayout& layout) const;

  double leaf_capacity() const { return leaf_capacity_; }

  /// Nodes in the snapshot, all levels (the cap of any traversal's DA_all).
  double total_nodes() const;

  /// Points indexed at the leaf level (leaf count x average capacity) — the
  /// population `hit_fraction` applies to.
  double indexed_points() const;

 private:
  TreeCostEstimator() = default;  // for Create
  Status Init(const SequenceIndex& index);

  struct LevelStats {
    std::size_t node_count = 0;
    std::vector<double> avg_extent;   // per dimension
    std::vector<double> avg_abs_center;  // per dimension
  };
  std::vector<LevelStats> levels_;  // levels_[0] = leaf level
  rstar::Rect domain_;
  double leaf_capacity_ = 0.0;
};

/// Group-cost function for transform::PartitionCostBased: estimated Eq. 19
/// per-rectangle cost C_DA * DA_all + CA_leaf * C_cmp * DA_leaf * NT.
double EstimateGroupCost(const TreeCostEstimator& estimator,
                         std::span<const transform::FeatureTransform> group,
                         double epsilon,
                         const transform::FeatureLayout& layout,
                         const CostConstants& constants = CostConstants());

}  // namespace tsq::core

#endif  // TSQ_CORE_COST_MODEL_H_
