#ifndef TSQ_CORE_COST_MODEL_H_
#define TSQ_CORE_COST_MODEL_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/index.h"
#include "core/query.h"
#include "rstar/rect.h"
#include "transform/feature_layout.h"
#include "transform/feature_transform.h"

namespace tsq::core {

/// Constants of the paper's cost function (Section 5.2 uses C_DA = 1 and
/// C_cmp = 0.4 * C_DA: "a sequence comparison takes as much as 40 percent
/// the time of a disk access").
struct CostConstants {
  double c_da = 1.0;
  double c_cmp = 0.4;
};

/// The cost function Ck of Eq. 20 evaluated on *measured* per-rectangle
/// counters:
///   Ck = C_DA * sum_i DA_all(q, r_i)
///      + CA_leaf * C_cmp * sum_i DA_leaf(q, r_i) * NT(r_i)
double CostEq20(std::span<const GroupRunStats> groups, double leaf_capacity,
                const CostConstants& constants = CostConstants());

/// Analytic R-tree disk-access estimator in the Kamel-Faloutsos style,
/// extended for transformed traversals: per level, the expected number of
/// node accesses is the node count times the probability that a random node
/// rectangle, *after* application of the transformation MBR, intersects the
/// query window — estimated from per-level average extents and the domain
/// extent. The paper (Section 4.3) observes that estimators ignoring the
/// actual rectangle distribution mispredict the best rectangle count; this
/// one keeps the dependence on the transformation rectangle's size, which is
/// what the cost-based partitioner needs.
class TreeCostEstimator {
 public:
  /// Snapshots per-level statistics of the index (reads every node once).
  explicit TreeCostEstimator(const SequenceIndex& index);

  /// Expected page accesses of one traversal with the given transformation
  /// group: `mult_spread`/`add_spread` are the per-dimension extents of the
  /// group's mult-/add-MBR and `query_extent` the per-dimension extent of
  /// the query region. Returns {expected DA_all, expected DA_leaf}.
  struct Estimate {
    double da_all = 0.0;
    double da_leaf = 0.0;
  };
  Estimate EstimateTraversal(
      std::span<const transform::FeatureTransform> group, double epsilon,
      const transform::FeatureLayout& layout) const;

  double leaf_capacity() const { return leaf_capacity_; }

 private:
  struct LevelStats {
    std::size_t node_count = 0;
    std::vector<double> avg_extent;   // per dimension
    std::vector<double> avg_abs_center;  // per dimension
  };
  std::vector<LevelStats> levels_;  // levels_[0] = leaf level
  rstar::Rect domain_;
  double leaf_capacity_ = 0.0;
};

/// Group-cost function for transform::PartitionCostBased: estimated Eq. 19
/// per-rectangle cost C_DA * DA_all + CA_leaf * C_cmp * DA_leaf * NT.
double EstimateGroupCost(const TreeCostEstimator& estimator,
                         std::span<const transform::FeatureTransform> group,
                         double epsilon,
                         const transform::FeatureLayout& layout,
                         const CostConstants& constants = CostConstants());

}  // namespace tsq::core

#endif  // TSQ_CORE_COST_MODEL_H_
