#ifndef TSQ_CORE_KNN_QUERY_H_
#define TSQ_CORE_KNN_QUERY_H_

#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/index.h"
#include "core/query.h"

namespace tsq::core {

/// Nearest-neighbour query under multiple transformations: find the k
/// sequences s minimizing min over t in T of D(t(s), t(q)).
struct KnnQuerySpec {
  ts::Series query;
  std::size_t k = 1;
  std::vector<transform::SpectralTransform> transforms;
  transform::Partition partition;  // MBR grouping for the bound; empty = one
  /// Same-transform distances (the paper) or transform-the-data-only
  /// (SIGMOD'97) — see TransformTarget.
  TransformTarget target = TransformTarget::kBoth;
  /// Optional fixed transformation applied once to the normalized query.
  std::optional<transform::SpectralTransform> query_transform;
};

/// One neighbour: the sequence, its best transformation, and the distance
/// under it.
struct KnnMatch {
  std::size_t series_id = 0;
  std::size_t transform_index = 0;
  double distance = 0.0;
};

struct KnnQueryResult {
  std::vector<KnnMatch> matches;  // ascending by distance
  QueryStats stats;
  obs::QueryTrace trace;
};

/// Best-first (Hjaltason-Samet) k-NN over the R*-tree, pruning with the
/// transformation-rectangle distance bound of Section 4.1's nearest-
/// neighbour paragraph: each visited rectangle is transformed by the group
/// MBR and its polar MINDIST to the MBR of the transformed query points
/// lower-bounds the true distance (the MINDIST analogue of Lemma 1).
/// kSequentialScan evaluates every sequence exactly.
///
/// Parallelism (`options.num_threads`): the sequential scan fans out one
/// task per fixed-size slice of the relation, then merges, sorts and
/// truncates — identical output for every thread count. The indexed
/// best-first search is inherently serial (each refinement depends on the
/// global queue order) and ignores num_threads.
/// `partition_override` (planner-chosen MBR grouping) behaves as in
/// RunRangeQuery; `options.planner.algorithm` must be concrete.
Result<KnnQueryResult> RunKnnQuery(const Dataset& dataset,
                                   const SequenceIndex& index,
                                   const KnnQuerySpec& spec,
                                   const ExecOptions& options,
                                   const transform::Partition*
                                       partition_override = nullptr);

/// Legacy entry point: algorithm only, single-threaded.
Result<KnnQueryResult> RunKnnQuery(const Dataset& dataset,
                                   const SequenceIndex& index,
                                   const KnnQuerySpec& spec,
                                   Algorithm algorithm);

/// Reference evaluation (ground truth for tests). Ties broken by series id.
std::vector<KnnMatch> BruteForceKnnQuery(const Dataset& dataset,
                                         const KnnQuerySpec& spec);

}  // namespace tsq::core

#endif  // TSQ_CORE_KNN_QUERY_H_
