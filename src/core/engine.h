#ifndef TSQ_CORE_ENGINE_H_
#define TSQ_CORE_ENGINE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/index.h"
#include "core/join_query.h"
#include "core/knn_query.h"
#include "core/query.h"
#include "core/range_query.h"

namespace tsq::core {

/// Facade over the whole system: owns the sequence relation, its record
/// storage and the R*-tree index, and exposes the paper's three query types.
///
/// Typical use (see examples/quickstart.cc):
///
///   tsq::core::SimilarityEngine engine(std::move(closing_prices));
///   tsq::core::RangeQuerySpec spec;
///   spec.query = ibm_closes;
///   spec.transforms = tsq::transform::MovingAverageRange(n, 1, 40);
///   spec.epsilon = tsq::ts::CorrelationToDistanceThreshold(0.96, n);
///   auto result = engine.RangeQuery(spec, tsq::core::Algorithm::kMtIndex);
class SimilarityEngine {
 public:
  struct Options {
    transform::FeatureLayout layout;
    rstar::TreeOptions tree;
  };

  /// Loads the relation (normalizes, stores records, extracts features) and
  /// builds the index. All series must share one length >= 2.
  explicit SimilarityEngine(std::vector<ts::Series> series,
                            Options options = Options());

  /// Adds one sequence (record + index entry); returns its id. Requires
  /// series.size() == length().
  Result<std::size_t> Insert(const ts::Series& series);

  /// Removes sequence `id` from the index and tombstones its record; it no
  /// longer appears in any query. NotFound for unknown or already-removed
  /// ids.
  Status Remove(std::size_t id);

  const Dataset& dataset() const { return *dataset_; }
  const SequenceIndex& index() const { return *index_; }
  /// Live sequences (insertions minus removals).
  std::size_t size() const { return dataset_->active_size(); }
  std::size_t length() const { return dataset_->length(); }

  /// Query 1 (range query). `group_stats`, when non-null, receives the
  /// per-rectangle counters for cost-function analysis.
  Result<RangeQueryResult> RangeQuery(
      const RangeQuerySpec& spec, Algorithm algorithm = Algorithm::kMtIndex,
      std::vector<GroupRunStats>* group_stats = nullptr) const;

  /// Query 2 (similarity self-join).
  Result<JoinQueryResult> Join(const JoinQuerySpec& spec,
                               Algorithm algorithm = Algorithm::kMtIndex) const;

  /// k-nearest neighbours under multiple transformations.
  Result<KnnQueryResult> Knn(const KnnQuerySpec& spec,
                             Algorithm algorithm = Algorithm::kMtIndex) const;

  /// Resets every I/O counter (between benchmark queries).
  void ResetIoStats();

  /// Makes every page read cost `nanos` nanoseconds of (spinning) latency,
  /// so wall-clock measurements can reproduce a chosen C_DA : C_cmp cost
  /// ratio (the paper's hardware had C_cmp = 0.4 * C_DA). 0 disables.
  void SetSimulatedDiskLatency(std::uint64_t nanos);

  /// Attaches an LRU buffer pool of `pages` pages to the index (0 detaches);
  /// see SequenceIndex::EnableBufferPool.
  void EnableIndexBufferPool(std::size_t pages);
  SequenceIndex& mutable_index() { return *index_; }

  /// Persists the engine to three files: `<prefix>.meta` (layout, tree and
  /// per-sequence metadata), `<prefix>.records` and `<prefix>.index` (page
  /// files). LoadFrom reopens them without rebuilding the index — the
  /// paper's setting of an R*-tree that lives on disk between sessions.
  Status SaveTo(const std::string& prefix) const;
  static Result<std::unique_ptr<SimilarityEngine>> LoadFrom(
      const std::string& prefix);

 private:
  SimilarityEngine() = default;  // for LoadFrom

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<SequenceIndex> index_;
};

}  // namespace tsq::core

#endif  // TSQ_CORE_ENGINE_H_
