#ifndef TSQ_CORE_ENGINE_H_
#define TSQ_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <variant>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/index.h"
#include "core/join_query.h"
#include "core/knn_query.h"
#include "core/query.h"
#include "core/query_spec.h"
#include "core/range_query.h"
#include "core/snapshot.h"
#include "storage/buffer_pool.h"

namespace tsq::plan {
class Planner;
}  // namespace tsq::plan

namespace tsq::core {

class ResultCache;

/// Uniform result of SimilarityEngine::Execute: the per-type result plus,
/// for range queries run with ExecOptions::collect_group_stats, the
/// per-rectangle counters of the cost function Ck (Eq. 20).
struct QueryResult {
  std::variant<RangeQueryResult, KnnQueryResult, JoinQueryResult> value;
  std::vector<GroupRunStats> group_stats;

  /// The execution counters, whatever the query type.
  const QueryStats& stats() const;

  /// The per-phase execution trace, whatever the query type.
  const obs::QueryTrace& trace() const;

  /// Typed views; nullptr when the result is of another type.
  const RangeQueryResult* range() const {
    return std::get_if<RangeQueryResult>(&value);
  }
  const KnnQueryResult* knn() const {
    return std::get_if<KnnQueryResult>(&value);
  }
  const JoinQueryResult* join() const {
    return std::get_if<JoinQueryResult>(&value);
  }
};

/// How SimilarityEngine::ExecuteBatch runs a batch: one ExecOptions applied
/// to every query of the batch, plus the result-cache switch.
struct BatchOptions {
  ExecOptions exec;
  /// Consult (and fill) the engine's snapshot-keyed ResultCache: cache hits
  /// are served without executing, and identical specs within one batch
  /// execute once. Off, every spec executes — the configuration whose
  /// results the differential fuzzer diffs against sequential Execute().
  bool use_result_cache = true;
};

/// Facade over the whole system: owns the sequence relation, its record
/// storage and the R*-tree index, and exposes the paper's three query types.
///
/// Typical use (see examples/quickstart.cc):
///
///   tsq::core::SimilarityEngine engine(std::move(closing_prices));
///   tsq::core::RangeQuerySpec spec;
///   spec.query = ibm_closes;
///   spec.transforms = tsq::transform::MovingAverageRange(n, 1, 40);
///   spec.epsilon = tsq::ts::CorrelationToDistanceThreshold(0.96, n);
///   auto result = engine.Execute(spec, {.num_threads = 4});
///   for (const auto& match : result->range()->matches) { ... }
///
/// The default ExecOptions leave the algorithm at Algorithm::kAuto: the
/// engine's cost-based planner (src/plan) picks among sequential scan,
/// ST-index and MT-index partitionings. Force a concrete plan with
/// {.planner = {.algorithm = Algorithm::kMtIndex}}.
///
/// Thread-safety: Execute() is const and safe to call from any number of
/// threads, *including* concurrently with Insert()/Remove(). Writes are
/// serialized against each other and against queries by an engine-level
/// SnapshotManager: every Execute() pins a read snapshot for its whole
/// duration and sees either all of a concurrent write or none of it, and
/// every committed write bumps the snapshot version (reported in the result
/// trace as `snapshot_version`). A write that fails partway compensates —
/// tombstoning the appended id, rebuilding the index — before releasing the
/// write lock, so queries never observe a half-applied mutation. See
/// docs/ARCHITECTURE.md ("Thread-safety contract") for the full contract
/// and the residual exclusions (configuration, persistence, stats resets).
class SimilarityEngine {
 public:
  struct Options {
    transform::FeatureLayout layout;
    rstar::TreeOptions tree;
  };

  /// Loads the relation (normalizes, stores records, extracts features) and
  /// builds the index. All series must share one length >= 2.
  explicit SimilarityEngine(std::vector<ts::Series> series,
                            Options options = Options());
  ~SimilarityEngine();

  /// Adds one sequence (record + index entry); returns its id. Requires
  /// series.size() == length().
  ///
  /// Atomic under concurrency: the append, the index insertion and the
  /// planner epoch bump commit under the engine write lock, so a concurrent
  /// Execute() sees either the old dataset or the fully inserted sequence —
  /// never an appended record without its index entry. If the index
  /// insertion fails (e.g. under fault injection), the appended id is
  /// tombstoned and the index rebuilt over the live sequences before the
  /// error is returned; the engine stays consistent and the failed id never
  /// matches any query. A failure in the record append itself needs no
  /// compensation: nothing was stored and the version does not move.
  Result<std::size_t> Insert(const ts::Series& series);

  /// Removes sequence `id` from the index and tombstones its record; it no
  /// longer appears in any query. NotFound for unknown or already-removed
  /// ids (the check runs under the same lock as the commit, so two racing
  /// Remove(id) calls resolve to one Ok and one NotFound).
  ///
  /// Atomic under concurrency: the tombstone is the commit point. If the
  /// index removal then fails partway, the index is rebuilt over the live
  /// sequences and the remove still returns Ok — the sequence is gone from
  /// every subsequent query either way.
  Status Remove(std::size_t id);

  const Dataset& dataset() const { return *dataset_; }
  const SequenceIndex& index() const { return *index_; }
  /// Live sequences (insertions minus removals).
  std::size_t size() const { return dataset_->active_size(); }
  std::size_t length() const { return dataset_->length(); }

  /// Number of committed writes since construction. Each successful (or
  /// compensated) Insert/Remove bumps it exactly once; Execute() stamps the
  /// version it pinned into the result trace, which is what lets an external
  /// oracle reconstruct the exact dataset state a query ran against.
  std::uint64_t write_version() const { return snapshots_.version(); }

  /// Runs any query. `options.planner` chooses the algorithm — the default,
  /// Algorithm::kAuto, hands the choice to the cost-based planner, whose
  /// decision (chosen plan, rejected candidates, estimated vs actual cost)
  /// lands in the result's trace and in Explain()/ExplainJson(). `options`
  /// also sets the worker-thread count (results and summed stats are
  /// identical for every value) and whether per-rectangle group stats are
  /// collected (range queries).
  /// Thread-safe: any number of concurrent Execute() calls, concurrently
  /// with Insert()/Remove(). The query runs against the snapshot pinned at
  /// entry (its version lands in the result trace); configuration calls
  /// (EnableIndexBufferPool, SetReadFaultHook, ...) remain excluded.
  Result<QueryResult> Execute(const QuerySpec& spec,
                              const ExecOptions& options = ExecOptions()) const;

  /// Runs a batch of queries against ONE pinned snapshot with ONE planner
  /// consultation, sharing work across the batch (see
  /// docs/ARCHITECTURE.md, "Batched execution & result cache"):
  ///
  ///  * indexed range queries with the same transformation set and effective
  ///    partition share a single index traversal per rectangle — the union
  ///    query region drives the descent and each visited entry is re-tested
  ///    against every member query's own epsilon band;
  ///  * every candidate record fetch of the batch goes through a
  ///    batch-scoped fetch table, so a page is read once however many
  ///    queries (or rectangles) want it;
  ///  * with `options.use_result_cache`, results are served from / published
  ///    to the engine's bounded LRU ResultCache, keyed on (canonical spec,
  ///    exec options, snapshot version, config epoch).
  ///
  /// Entry i of the returned vector is the result (or error Status) of
  /// specs[i]. Matches are byte-identical to issuing the specs sequentially
  /// via Execute() at the same snapshot, for any num_threads; stats follow
  /// the deterministic attribution rules documented in ARCHITECTURE.md
  /// (shared traversal counters go to the group leader, deduped fetch pages
  /// to the lowest-indexed query that planned the fetch). A fault injected
  /// into one query's I/O fails that entry only.
  ///
  /// Thread-safe like Execute(): any number of concurrent batches,
  /// concurrently with Insert()/Remove().
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<QuerySpec>& specs,
      const BatchOptions& options = BatchOptions()) const;

  /// The cost-based planner (plan cache, calibrated constants, epoch).
  /// Mostly for tests and benches; Execute() consults it automatically.
  plan::Planner& planner() const { return *planner_; }

  /// The snapshot-keyed result cache ExecuteBatch serves hits from.
  ResultCache& result_cache() const { return *result_cache_; }

  /// Bumped by every configuration change that alters what a query would
  /// read (buffer pool, simulated latency, fault hooks); part of the
  /// ResultCache key, so reconfiguration invalidates every cached result.
  std::uint64_t config_epoch() const {
    return config_epoch_.load(std::memory_order_acquire);
  }

  /// Resets every I/O counter — record store, index page file and, when one
  /// is attached, the index buffer pool — between benchmark queries.
  ///
  /// Thread-safety: each counter is reset through the same atomics the read
  /// paths update, so calling this concurrently with Execute() is free of
  /// data races — but it is still excluded by the thread-safety contract
  /// (docs/ARCHITECTURE.md): a query in flight across the reset would have
  /// its I/O split between the two epochs, making both epochs' numbers
  /// meaningless. Quiesce queries first, then reset.
  void ResetIoStats();

  /// Makes every page read cost `nanos` nanoseconds of (spinning) latency,
  /// so wall-clock measurements can reproduce a chosen C_DA : C_cmp cost
  /// ratio (the paper's hardware had C_cmp = 0.4 * C_DA). 0 disables.
  void SetSimulatedDiskLatency(std::uint64_t nanos);

  /// Attaches a sharded LRU buffer pool of `pages` pages to the index
  /// (0 detaches; `shards` = 0 uses the default shard count); see
  /// SequenceIndex::EnableBufferPool. Runs under the engine write lock, so
  /// it waits out in-flight queries rather than racing them — but queries
  /// issued *after* it returns see the new pool, so benchmark setup should
  /// still quiesce first for meaningful numbers.
  void EnableIndexBufferPool(std::size_t pages, std::size_t shards = 0);

  /// Installs (nullptr removes) one fault-injection hook on every storage
  /// layer a query reads through: the record page file, the index page file
  /// and — now or whenever one is attached later — the index buffer pool.
  /// With a hook installed, Execute() either returns the exact fault-free
  /// result or a non-OK Status; it never crashes or silently drops matches,
  /// and Insert/Remove compensate so the engine stays consistent. Runs under
  /// the engine write lock; keep the hook alive until removed.
  void SetReadFaultHook(storage::FaultHook* hook);

  /// The index buffer pool, nullptr when none is attached. This replaces the
  /// old mutable_index() escape hatch, which let callers restructure the
  /// index behind the engine's back — a data race once queries run on worker
  /// threads. Benchmarks only need the pool (to clear it or reset its
  /// counters between runs), so only the pool is exposed.
  storage::BufferPool* index_buffer_pool() { return index_->buffer_pool(); }
  const storage::BufferPool* index_buffer_pool() const {
    return index_->buffer_pool();
  }

  /// Persists the engine as one crash-safe checkpoint. Each SaveTo picks a
  /// fresh monotone epoch E and writes `<prefix>.<E>.records`,
  /// `<prefix>.<E>.index` and `<prefix>.<E>.meta` — each through the atomic
  /// write-temp/fsync/rename protocol (storage::AtomicFile) — and then
  /// commits the checkpoint by atomically replacing `<prefix>.manifest`,
  /// which records the epoch plus every file's size and checksum. Files of
  /// superseded epochs are garbage-collected after the commit. A crash at
  /// *any* step leaves either the previous checkpoint fully loadable or the
  /// new one — never a mismatched trio (the pre-manifest format overwrote
  /// the three files in place, so a torn save destroyed the last good
  /// checkpoint). SaveTo pins a read snapshot, so it writes a committed
  /// state even while Insert/Remove run concurrently; concurrent SaveTo
  /// calls on one prefix remain excluded.
  Status SaveTo(const std::string& prefix) const;

  /// Reopens a checkpoint without rebuilding the index — the paper's
  /// setting of an R*-tree that lives on disk between sessions. The
  /// manifest is read first and every referenced file is verified against
  /// its recorded size and checksum *before* anything is parsed; leftovers
  /// of a torn save (stale epochs, `.tmp` orphans) are detected, counted in
  /// `engine.checkpoint.crash_recoveries` and removed. Returns Corruption
  /// for any mismatch and IoError when the manifest is missing.
  static Result<std::unique_ptr<SimilarityEngine>> LoadFrom(
      const std::string& prefix);

  /// Epoch of the newest checkpoint this engine wrote (SaveTo) or was
  /// loaded from; 0 before either. Stamped into every query trace and
  /// Explain() rendering.
  std::uint64_t checkpoint_epoch() const {
    return checkpoint_epoch_.load(std::memory_order_relaxed);
  }

  /// Installs (nullptr removes) a fault hook whose OnWrite is consulted at
  /// every step of SaveTo — file creation, each data append, fsync, rename,
  /// directory sync, garbage collection. The crash-recovery harness uses it
  /// to abort the save at step k, simulating a crash; the files already on
  /// disk stay exactly as the crash would leave them. Runs under the engine
  /// write lock; keep the hook alive until removed.
  void SetCheckpointFaultHook(storage::FaultHook* hook);

 private:
  SimilarityEngine();  // for LoadFrom

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<SequenceIndex> index_;
  std::unique_ptr<plan::Planner> planner_;
  // Serializes Insert/Remove (and configuration) against pinned queries;
  // mutable because Execute() is const yet must pin a read snapshot.
  mutable SnapshotManager snapshots_;
  // Newest checkpoint epoch written or loaded; advanced by SaveTo right
  // after the manifest commit (before GC) so a post-commit failure still
  // leaves the engine agreeing with the disk.
  mutable std::atomic<std::uint64_t> checkpoint_epoch_{0};
  // Configuration epoch: bumped (under the write lock) by every call that
  // changes what a query would read — buffer pool attach/detach, simulated
  // latency, fault hooks. Part of the ResultCache key.
  mutable std::atomic<std::uint64_t> config_epoch_{0};
  // Snapshot-keyed result cache for ExecuteBatch; mutable because batches
  // run through const methods.
  mutable std::unique_ptr<ResultCache> result_cache_;
  // Crash-injection schedule for SaveTo; written under the write lock, read
  // under SaveTo's read pin.
  storage::FaultHook* checkpoint_hook_ = nullptr;
};

}  // namespace tsq::core

#endif  // TSQ_CORE_ENGINE_H_
