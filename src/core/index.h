#ifndef TSQ_CORE_INDEX_H_
#define TSQ_CORE_INDEX_H_

#include <memory>

#include "common/status.h"
#include "core/dataset.h"
#include "rstar/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tsq::core {

/// The multidimensional index of the paper: an R*-tree over the feature
/// vectors of a Dataset, persisted in its own paged file so index page reads
/// are counted separately from record fetches.
class SequenceIndex {
 public:
  /// Builds the index over every sequence of `dataset` (leaf entry id = the
  /// sequence's position in the dataset). The dataset must outlive the
  /// index.
  explicit SequenceIndex(const Dataset& dataset,
                         rstar::TreeOptions options = rstar::TreeOptions());

  /// Persistence: writes the index pages to `path` atomically (see
  /// PageFile::SaveTo); `hook` carries the crash-injection schedule,
  /// `digest` receives the written file's manifest entry.
  Status SaveTo(const std::string& path, storage::FaultHook* hook = nullptr,
                storage::FileDigest* digest = nullptr) const {
    return index_file_.SaveTo(path, hook, digest);
  }

  /// Rebuild-free load: attaches to previously saved index pages.
  static Result<std::unique_ptr<SequenceIndex>> LoadFrom(
      const Dataset& dataset, rstar::TreeOptions options,
      const std::string& path, storage::PageId root, std::size_t height,
      std::size_t size);

  const rstar::RStarTree& tree() const { return *tree_; }
  const Dataset& dataset() const { return *dataset_; }

  /// Adds the (already appended) dataset sequence `i` to the index.
  Status InsertEntry(std::size_t i);

  /// Removes sequence `i`'s entry from the index.
  Status RemoveEntry(std::size_t i);

  /// Discards the tree and bulk-loads a fresh one over every *live* dataset
  /// sequence — the engine's compensation step when InsertEntry/RemoveEntry
  /// failed partway (a failed tree restructure can drop entries for
  /// unrelated live ids, which tombstones cannot repair). Bulk loading only
  /// writes pages, so Rebuild succeeds even while a read-fault hook is
  /// injecting failures. Page ids restart from 0, so an attached buffer
  /// pool is cleared. Requires external exclusion from queries (the engine
  /// calls it under its write lock).
  Status Rebuild();

  storage::IoStats index_io() const { return index_file_.stats(); }
  void ResetIndexIo() { index_file_.ResetStats(); }

  /// Simulated per-page read latency (see storage::PageFile).
  void set_io_delay_nanos(std::uint64_t nanos) {
    index_file_.set_read_delay_nanos(nanos);
  }

  /// Attaches a sharded LRU buffer pool of `pages` pages in front of the
  /// index file (0 detaches). `shards` picks the lock-striping factor
  /// (0 = BufferPool::kDefaultShards; clamped to `pages`). With a pool,
  /// physical reads = pool misses; the tree's SearchStats keep counting
  /// logical node accesses.
  void EnableBufferPool(std::size_t pages, std::size_t shards = 0);
  const storage::BufferPool* buffer_pool() const { return pool_.get(); }
  storage::BufferPool* buffer_pool() { return pool_.get(); }

  /// Installs (nullptr removes) a fault-injection hook on the index page
  /// file and, when one is attached, the index buffer pool. The hook is
  /// remembered, so EnableBufferPool re-installs it on a newly created pool.
  /// Not safe concurrently with Execute(); keep the hook alive until
  /// removed.
  void SetReadFaultHook(storage::FaultHook* hook);

  /// Average number of entries per leaf node (CA_leaf in the cost model,
  /// Eq. 18).
  double AverageLeafCapacity() const;

 private:
  struct LoadTag {};
  SequenceIndex(const Dataset& dataset, LoadTag) : dataset_(&dataset) {}

  const Dataset* dataset_;
  rstar::TreeOptions options_;
  mutable storage::PageFile index_file_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<rstar::RStarTree> tree_;
  storage::FaultHook* fault_hook_ = nullptr;
};

}  // namespace tsq::core

#endif  // TSQ_CORE_INDEX_H_
