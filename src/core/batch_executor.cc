// SimilarityEngine::ExecuteBatch: one snapshot pin and one planner
// consultation for a whole batch of queries, with work shared across the
// batch — grouped index traversals, a batch-scoped record-fetch table, and
// the snapshot-keyed result cache.
//
// The contract this file exists to keep: per-query *matches* are
// byte-identical to issuing the specs sequentially via Execute() at the same
// snapshot, for any thread count. Everything here is organized around that —
// the batch path reuses the solo executor's task decomposition
// (range_detail::kScanChunk / kVerifyChunk), its per-candidate evaluation
// (range_detail::VerifyCandidate) and its merge order, and the shared
// traversal is constructed so each member query's candidate list comes out
// exactly as its solo traversal would have produced it:
//
//  * the union predicate `any member: mbr.AppliedIntersects(rect, region_m)`
//    visits a superset of every member's solo node set (the predicate is a
//    disjunction containing the member's own test);
//  * TransformMbr::Apply is monotone in rect containment, so a leaf entry
//    passing member m's test implies every ancestor rect passes it too —
//    re-filtering the union traversal's collected entries with m's own test
//    therefore yields exactly m's solo candidate *set*;
//  * the traversal is a deterministic stack DFS, and union-only subtrees are
//    pushed/popped as contiguous blocks between m's subtrees, so the
//    relative order of m's entries is m's solo *order*.
//
// I/O attribution is deterministic by construction: the fetch table
// memoizes each record fetch (so a page is read once per batch) and records
// the pages it cost via FetchSpectrum's per-call out-param — never by
// diffing the shared PageFile counters, which is what makes the accounting
// immune to a concurrent ResetIoStats(). A serial post-pass then charges
// each fetched id's pages to the lowest-indexed successful query that
// requested it (queries in input order, each query's candidates in
// rect-major task order), which is thread-count independent because the
// candidate lists themselves are.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/engine.h"
#include "core/result_cache.h"
#include "exec/batch_schedule.h"
#include "exec/parallel.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "plan/planner.h"
#include "transform/ordering.h"
#include "transform/transform_mbr.h"
#include "ts/normal_form.h"

namespace tsq::core {

namespace {

using range_detail::kScanChunk;
using range_detail::kVerifyChunk;
using range_detail::OrderGroupByChain;
using range_detail::ValidateRangeSpec;
using range_detail::VerifyCandidate;

struct BatchMetrics {
  obs::Counter* batches;
  obs::Counter* queries;
  obs::Counter* shared_traversals;
  obs::Counter* deduped_fetches;

  static const BatchMetrics& Get() {
    static const BatchMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return BatchMetrics{registry.counter("engine.batch.batches"),
                          registry.counter("engine.batch.queries"),
                          registry.counter("engine.batch.shared_traversals"),
                          registry.counter("engine.batch.deduped_fetches")};
    }();
    return metrics;
  }
};

/// Memoized record fetches for one batch: slot i holds sequence i's fetched
/// spectrum (or the error of the one attempted fetch) plus the physical
/// pages that single fetch read. The slot vector is sized once from the
/// pinned dataset and never resized, so concurrent Get() calls only race on
/// the per-slot once_flag. Page counts come from FetchSpectrum's out-param —
/// a per-call delta, not a shared-counter diff — so a ResetIoStats() racing
/// the batch cannot split or double the dedupe accounting.
class BatchFetchTable {
 public:
  explicit BatchFetchTable(const Dataset& dataset)
      : dataset_(dataset), slots_(dataset.size()) {}

  /// The memoized fetch of sequence `id` (first caller pays the I/O).
  const Result<std::vector<dft::Complex>>& Get(std::size_t id) {
    Slot& slot = slots_[id];
    std::call_once(slot.once, [&] {
      slot.value.emplace(dataset_.FetchSpectrum(id, &slot.pages));
    });
    return *slot.value;
  }

  /// Physical pages the one fetch of `id` read (0 if never fetched).
  std::uint64_t pages(std::size_t id) const { return slots_[id].pages; }

 private:
  struct Slot {
    std::once_flag once;
    std::optional<Result<std::vector<dft::Complex>>> value;
    std::uint64_t pages = 0;
  };

  const Dataset& dataset_;
  std::vector<Slot> slots_;
};

/// One verification subtask of a range query: a fixed-size chunk of one
/// rectangle's candidate list (indexed), or a fixed-size slice of the
/// relation (scan). Subtask order is the solo executor's task order, which
/// is what makes the per-query merge reproduce solo output byte-for-byte.
struct VerifyRef {
  std::size_t rect = 0;  // unused for scans
  exec::ChunkRange range;
};

struct VerifyPart {
  std::vector<Match> matches;
  QueryStats stats;
  std::uint64_t fetch_nanos = 0;
  std::uint64_t verify_nanos = 0;
  std::uint64_t fetched = 0;  // candidates fetched (indexed trace items)
};

/// Everything one *executing* query carries through the batch (cache hits
/// and in-batch duplicates never build one of these).
struct QueryExec {
  enum class Kind { kScan, kIndexed, kKnn, kJoin };
  Kind kind = Kind::kScan;

  ExecOptions resolved;  // options.exec with the planner's algorithm
  std::shared_ptr<const plan::PlanDecision> decision;
  bool plan_cache_hit = false;
  const transform::Partition* partition_override = nullptr;

  // Range-query state (solo executor's plan phase, precomputed up front).
  const RangeQuerySpec* range = nullptr;
  transform::Partition partition;  // effective (indexed only)
  std::vector<dft::Complex> query_spectrum;
  rstar::Point query_features;
  std::vector<transform::FeatureTransform> feature_transforms;
  std::vector<std::vector<std::size_t>> rect_groups;  // chain-ordered copies
  std::vector<bool> rect_ordered;
  std::vector<std::size_t> scan_group;
  bool scan_ordered = false;
  std::uint64_t plan_nanos = 0;

  // Shared-traversal membership (indexed only).
  std::size_t group_id = 0;
  std::size_t member_index = 0;

  // Verification decomposition + per-subtask partial results.
  std::vector<VerifyRef> verify_tasks;
  std::vector<VerifyPart> parts;

  // Deterministic I/O attribution.
  std::uint64_t attributed_pages = 0;
  std::uint64_t requests = 0;
  std::uint64_t claims = 0;
  std::vector<std::uint64_t> rect_pages;  // per rect (indexed)
};

/// One rectangle of a shared traversal: the union search plus the
/// re-filtered per-member candidate lists.
struct RectPass {
  std::vector<rstar::Entry> entries;
  rstar::SearchStats search;
  std::uint64_t nanos = 0;
  Status status = Status::Ok();
  std::vector<std::vector<rstar::Entry>> member_candidates;
};

/// Executing indexed range queries with identical (transform set, effective
/// partition) — one index traversal per rectangle serves all of them. The
/// lowest-indexed member is the leader: union traversal counters are
/// attributed to it (every other member reports 0 for those fields).
struct TraversalGroup {
  std::vector<std::size_t> members;  // spec indices, input order
  std::vector<RectPass> rects;
  Status status = Status::Ok();  // lowest-rect-index traversal failure
};

/// Grouping signature: the parts of a range query that must coincide for
/// two queries to share a traversal. Epsilon, target, ordering, the query
/// itself and its query_transform may all differ — they only shape each
/// member's own region and verification.
plan::PlanKey TraversalSignature(const RangeQuerySpec& spec,
                                 const transform::Partition& partition) {
  plan::PlanKeyBuilder key;
  key.Add(spec.transforms.size());
  for (const transform::SpectralTransform& t : spec.transforms) {
    key.AddString(t.label());
    key.Add(t.length());
    for (std::size_t f = 0; f < t.length(); ++f) {
      const dft::Complex m = t.multiplier(f);
      key.AddDouble(m.real());
      key.AddDouble(m.imag());
    }
  }
  key.Add(partition.size());
  for (const std::vector<std::size_t>& group : partition) {
    key.Add(group.size());
    for (const std::size_t t : group) key.Add(t);
  }
  return key.key();
}

/// Stamps the fields every batched result carries, mirroring what
/// SimilarityEngine::Execute stamps after running a query.
void StampTrace(QueryResult* out, const SimilarityEngine& engine,
                std::uint64_t snapshot_version, std::uint64_t checkpoint_epoch,
                const plan::Planned* planned, std::size_t batch_size) {
  obs::QueryTrace& trace = std::visit(
      [](auto& result) -> obs::QueryTrace& { return result.trace; },
      out->value);
  (void)engine;
  trace.snapshot_version = snapshot_version;
  trace.checkpoint_epoch = checkpoint_epoch;
  trace.kernel_isa = kernels::IsaName(kernels::ActiveIsa());
  trace.batch_size = batch_size;
  if (planned != nullptr && planned->decision->trace.planned) {
    trace.planner = planned->decision->trace;
    trace.planner.cache_hit = planned->cache_hit;
    const QueryStats& stats = out->stats();
    trace.planner.actual_cost =
        planned->decision->constants.c_da *
            static_cast<double>(stats.disk_accesses()) +
        planned->decision->constants.c_cmp *
            static_cast<double>(stats.comparisons);
  }
}

/// Copies a cached (or leader's) result for serving, rewriting the batch
/// fields for the serving batch: the cached canonical copy has them zeroed,
/// and stale sharing data from the computing batch must not leak.
QueryResult ServeCopy(const QueryResult& canonical, std::size_t batch_size) {
  QueryResult out = canonical;
  obs::QueryTrace& trace = std::visit(
      [](auto& result) -> obs::QueryTrace& { return result.trace; },
      out.value);
  trace.batch_size = batch_size;
  trace.batch_group_queries = 0;
  trace.shared_traversal = false;
  trace.deduped_fetches = 0;
  trace.result_cache_hit = true;
  return out;
}

/// The canonical form a result is cached under: batch fields zeroed, so a
/// hit served into a later batch carries that batch's sharing data (none),
/// not the computing batch's.
std::shared_ptr<const QueryResult> CanonicalForCache(const QueryResult& out) {
  auto canonical = std::make_shared<QueryResult>(out);
  obs::QueryTrace& trace = std::visit(
      [](auto& result) -> obs::QueryTrace& { return result.trace; },
      canonical->value);
  trace.batch_size = 0;
  trace.batch_group_queries = 0;
  trace.shared_traversal = false;
  trace.deduped_fetches = 0;
  trace.result_cache_hit = false;
  return canonical;
}

}  // namespace

std::vector<Result<QueryResult>> SimilarityEngine::ExecuteBatch(
    const std::vector<QuerySpec>& specs, const BatchOptions& options) const {
  const BatchMetrics& metrics = BatchMetrics::Get();
  const std::uint64_t batch_start = MonotonicNanos();
  if (specs.empty()) return {};
  metrics.batches->Increment();
  metrics.queries->Increment(specs.size());
  const std::size_t n = specs.size();

  // One snapshot pin for the whole batch: every query sees the same
  // (dataset, index, plan epoch) triple, and its version keys the cache.
  const SnapshotManager::ReadPin pin = snapshots_.PinRead();
  const std::uint64_t snapshot_version = pin.version();
  const std::uint64_t checkpoint_epoch =
      checkpoint_epoch_.load(std::memory_order_relaxed);
  const std::uint64_t config_epoch =
      config_epoch_.load(std::memory_order_acquire);

  // One planner consultation (one mutex acquisition) for the whole batch.
  std::vector<const QuerySpec*> spec_ptrs;
  spec_ptrs.reserve(n);
  for (const QuerySpec& spec : specs) spec_ptrs.push_back(&spec);
  std::vector<Result<plan::Planned>> planned =
      planner_->PlanBatch(spec_ptrs, options.exec.planner);

  std::vector<std::optional<Result<QueryResult>>> staged(n);

  // --- Result cache pre-pass -----------------------------------------------
  // Per query: serve a hit, defer to an identical earlier spec of this batch
  // (dup), claim ownership of the key (pinned — this query publishes), or
  // bypass (another batch is computing the same key right now; execute
  // without publishing).
  std::vector<std::optional<plan::PlanKey>> cache_keys(n);
  std::vector<bool> pinned(n, false);
  struct Dup {
    std::size_t index;
    std::size_t leader;
  };
  std::vector<Dup> dups;
  if (options.use_result_cache) {
    std::unordered_map<plan::PlanKey, std::size_t, plan::PlanKeyHash>
        leader_for_key;
    for (std::size_t i = 0; i < n; ++i) {
      if (!planned[i].ok()) continue;
      const ResultCacheKey key = ComputeResultCacheKey(
          specs[i], options.exec, snapshot_version, config_epoch);
      if (!key.cacheable) continue;
      cache_keys[i] = key.key;
      if (std::shared_ptr<const QueryResult> hit =
              result_cache_->Lookup(key.key)) {
        staged[i].emplace(ServeCopy(*hit, n));
        continue;
      }
      if (const auto it = leader_for_key.find(key.key);
          it != leader_for_key.end()) {
        dups.push_back(Dup{i, it->second});
        continue;
      }
      leader_for_key.emplace(key.key, i);
      pinned[i] = result_cache_->Pin(key.key);
    }
  }
  const auto is_dup = [&dups](std::size_t i) {
    for (const Dup& dup : dups) {
      if (dup.index == i) return true;
    }
    return false;
  };

  // --- Per-query preparation (the solo executor's plan phase) --------------
  const transform::FeatureLayout& layout = dataset_->layout();
  std::vector<std::unique_ptr<QueryExec>> execs(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (staged[i].has_value() || is_dup(i)) continue;
    if (!planned[i].ok()) {
      staged[i].emplace(planned[i].status());
      continue;
    }
    auto exec = std::make_unique<QueryExec>();
    exec->decision = planned[i]->decision;
    exec->plan_cache_hit = planned[i]->cache_hit;
    exec->resolved = options.exec;
    exec->resolved.planner.algorithm = exec->decision->algorithm;
    exec->partition_override =
        exec->decision->partition.empty() ? nullptr : &exec->decision->partition;

    const auto* range = std::get_if<RangeQuerySpec>(&specs[i]);
    if (range == nullptr) {
      exec->kind = std::holds_alternative<KnnQuerySpec>(specs[i])
                       ? QueryExec::Kind::kKnn
                       : QueryExec::Kind::kJoin;
      execs[i] = std::move(exec);
      continue;
    }

    // Range query: validate and precompute exactly what RunRangeQuery's
    // plan phase computes, so the verification below is the solo executor's
    // verbatim.
    const std::uint64_t plan_start = MonotonicNanos();
    if (const Status valid = ValidateRangeSpec(*dataset_, *range);
        !valid.ok()) {
      staged[i].emplace(valid);
      continue;
    }
    exec->range = range;
    const ts::NormalForm query_normal = ts::Normalize(range->query);
    exec->query_spectrum = dataset_->plan().Forward(query_normal.values);
    if (range->query_transform.has_value()) {
      exec->query_spectrum =
          range->query_transform->ApplyToSpectrum(exec->query_spectrum);
    }
    exec->query_features =
        ExtractFeatures(query_normal, exec->query_spectrum, layout);
    std::vector<std::size_t> chain;
    if (range->use_ordering) {
      chain = transform::DominanceChain(range->transforms);
    }

    if (exec->resolved.planner.algorithm == Algorithm::kSequentialScan) {
      exec->kind = QueryExec::Kind::kScan;
      exec->scan_group.resize(range->transforms.size());
      for (std::size_t t = 0; t < exec->scan_group.size(); ++t) {
        exec->scan_group[t] = t;
      }
      exec->scan_ordered =
          range->use_ordering && OrderGroupByChain(chain, &exec->scan_group);
      exec->plan_nanos = MonotonicNanos() - plan_start;
      execs[i] = std::move(exec);
      continue;
    }

    exec->kind = QueryExec::Kind::kIndexed;
    // Effective partition, replicating RunRangeQuery's precedence exactly.
    if (exec->resolved.planner.algorithm == Algorithm::kStIndex) {
      exec->partition =
          transform::PartitionSingletons(range->transforms.size());
    } else if (exec->partition_override != nullptr &&
               !exec->partition_override->empty()) {
      exec->partition = *exec->partition_override;
    } else if (range->partition.empty()) {
      exec->partition = transform::PartitionAll(range->transforms.size());
    } else {
      exec->partition = range->partition;
    }
    exec->feature_transforms.reserve(range->transforms.size());
    for (const transform::SpectralTransform& t : range->transforms) {
      exec->feature_transforms.push_back(t.ToFeatureTransform(layout));
    }
    exec->rect_groups.resize(exec->partition.size());
    exec->rect_ordered.resize(exec->partition.size());
    for (std::size_t g = 0; g < exec->partition.size(); ++g) {
      exec->rect_groups[g] = exec->partition[g];
      exec->rect_ordered[g] =
          range->use_ordering && OrderGroupByChain(chain, &exec->rect_groups[g]);
    }
    exec->plan_nanos = MonotonicNanos() - plan_start;
    execs[i] = std::move(exec);
  }

  // --- Shared-traversal grouping -------------------------------------------
  // Executing indexed range queries with identical (transform set, effective
  // partition) share one traversal per rectangle. Group ids are assigned in
  // input order, so the grouping — like everything else — is deterministic.
  std::vector<TraversalGroup> groups;
  {
    std::unordered_map<plan::PlanKey, std::size_t, plan::PlanKeyHash>
        group_for_signature;
    for (std::size_t i = 0; i < n; ++i) {
      if (execs[i] == nullptr || execs[i]->kind != QueryExec::Kind::kIndexed) {
        continue;
      }
      const plan::PlanKey signature =
          TraversalSignature(*execs[i]->range, execs[i]->partition);
      const auto [it, inserted] =
          group_for_signature.emplace(signature, groups.size());
      if (inserted) {
        groups.emplace_back();
        groups.back().rects.resize(execs[i]->partition.size());
      }
      execs[i]->group_id = it->second;
      execs[i]->member_index = groups[it->second].members.size();
      groups[it->second].members.push_back(i);
    }
  }

  // --- Phase A: shared index traversals ------------------------------------
  // One task per (group, rectangle). The union of the member regions drives
  // the descent; each collected entry is then re-tested per member, which
  // (by monotonicity, see the file comment) recovers each member's solo
  // candidate list exactly.
  {
    struct TraversalTask {
      std::size_t group = 0;
      std::size_t rect = 0;
    };
    std::vector<TraversalTask> tasks;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (std::size_t r = 0; r < groups[g].rects.size(); ++r) {
        tasks.push_back(TraversalTask{g, r});
      }
    }
    (void)exec::ParallelFor(
        options.exec.num_threads, tasks.size(), [&](std::size_t ti) -> Status {
          const TraversalTask& task = tasks[ti];
          TraversalGroup& group = groups[task.group];
          RectPass& pass = group.rects[task.rect];
          const std::uint64_t task_start = MonotonicNanos();
          const QueryExec& leader = *execs[group.members.front()];
          const std::vector<std::size_t>& rect_transforms =
              leader.partition[task.rect];
          std::vector<transform::FeatureTransform> group_fts;
          group_fts.reserve(rect_transforms.size());
          for (const std::size_t t : rect_transforms) {
            group_fts.push_back(leader.feature_transforms[t]);
          }
          const transform::TransformMbr mbr(group_fts, layout);
          const std::vector<transform::FeatureTransform> identity = {
              transform::FeatureTransform::Identity(layout.dimensions())};
          // Per-member query regions (each member's own epsilon band and
          // target semantics; the MBR is common to the group).
          std::vector<rstar::Rect> regions;
          regions.reserve(group.members.size());
          for (const std::size_t member : group.members) {
            const QueryExec& q = *execs[member];
            regions.push_back(BuildQueryRegion(
                q.query_features,
                q.range->target == TransformTarget::kBoth
                    ? std::span<const transform::FeatureTransform>(group_fts)
                    : std::span<const transform::FeatureTransform>(identity),
                q.range->epsilon, layout));
          }
          pass.status = index_->tree().Search(
              [&](const rstar::Rect& rect) {
                for (const rstar::Rect& region : regions) {
                  if (mbr.AppliedIntersects(rect, region)) return true;
                }
                return false;
              },
              &pass.entries, &pass.search);
          pass.member_candidates.resize(group.members.size());
          if (pass.status.ok()) {
            for (const rstar::Entry& entry : pass.entries) {
              for (std::size_t m = 0; m < regions.size(); ++m) {
                if (mbr.AppliedIntersects(entry.rect, regions[m])) {
                  pass.member_candidates[m].push_back(entry);
                }
              }
            }
          }
          pass.nanos = MonotonicNanos() - task_start;
          return Status::Ok();  // per-rect status captured in the pass
        });
    for (TraversalGroup& group : groups) {
      for (const RectPass& pass : group.rects) {
        if (!pass.status.ok()) {
          group.status = pass.status;  // lowest rect index wins, like solo
          break;
        }
      }
      if (group.members.size() >= 2) {
        metrics.shared_traversals->Increment(group.rects.size());
      }
    }
  }

  // --- Phase B: verification through the batch fetch table -----------------
  // Subtask decomposition per query is the solo executor's: rect-major
  // kVerifyChunk chunks (indexed) or kScanChunk slices (scan). All queries'
  // subtasks run through one ParallelForBatch, so slow queries borrow
  // workers from fast ones; per-query statuses aggregate exactly as each
  // query's solo ParallelFor would have.
  BatchFetchTable fetch_table(*dataset_);
  std::vector<std::size_t> verify_counts(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (execs[i] == nullptr) continue;
    QueryExec& q = *execs[i];
    if (q.kind == QueryExec::Kind::kScan) {
      const std::size_t slices = exec::ChunkCount(dataset_->size(), kScanChunk);
      q.verify_tasks.reserve(slices);
      for (std::size_t c = 0; c < slices; ++c) {
        q.verify_tasks.push_back(
            VerifyRef{0, exec::ChunkBounds(dataset_->size(), kScanChunk, c)});
      }
    } else if (q.kind == QueryExec::Kind::kIndexed &&
               groups[q.group_id].status.ok()) {
      const TraversalGroup& group = groups[q.group_id];
      for (std::size_t g = 0; g < group.rects.size(); ++g) {
        const std::size_t count =
            group.rects[g].member_candidates[q.member_index].size();
        const std::size_t chunks = exec::ChunkCount(count, kVerifyChunk);
        for (std::size_t c = 0; c < chunks; ++c) {
          q.verify_tasks.push_back(
              VerifyRef{g, exec::ChunkBounds(count, kVerifyChunk, c)});
        }
      }
    }
    q.parts.resize(q.verify_tasks.size());
    verify_counts[i] = q.verify_tasks.size();
  }
  const std::vector<Status> verify_status = exec::ParallelForBatch(
      options.exec.num_threads, verify_counts,
      [&](std::size_t i, std::size_t ti) -> Status {
        QueryExec& q = *execs[i];
        const VerifyRef& ref = q.verify_tasks[ti];
        VerifyPart& part = q.parts[ti];
        if (q.kind == QueryExec::Kind::kScan) {
          for (std::size_t id = ref.range.first; id < ref.range.last; ++id) {
            if (dataset_->removed(id)) continue;
            const std::uint64_t fetch_start = MonotonicNanos();
            const Result<std::vector<dft::Complex>>& spectrum =
                fetch_table.Get(id);
            const std::uint64_t fetch_end = MonotonicNanos();
            part.fetch_nanos += fetch_end - fetch_start;
            if (!spectrum.ok()) return spectrum.status();
            ++part.stats.candidates;
            VerifyCandidate(*q.range, *spectrum, q.query_spectrum,
                            q.scan_group, q.scan_ordered, id, &part.matches,
                            &part.stats);
            part.verify_nanos += MonotonicNanos() - fetch_end;
          }
          return Status::Ok();
        }
        const RectPass& pass = groups[q.group_id].rects[ref.rect];
        const std::vector<rstar::Entry>& candidates =
            pass.member_candidates[q.member_index];
        for (std::size_t c = ref.range.first; c < ref.range.last; ++c) {
          const rstar::Entry& entry = candidates[c];
          const std::uint64_t fetch_start = MonotonicNanos();
          const Result<std::vector<dft::Complex>>& spectrum =
              fetch_table.Get(entry.id);
          const std::uint64_t fetch_end = MonotonicNanos();
          part.fetch_nanos += fetch_end - fetch_start;
          if (!spectrum.ok()) return spectrum.status();
          ++part.fetched;
          VerifyCandidate(*q.range, *spectrum, q.query_spectrum,
                          q.rect_groups[ref.rect], q.rect_ordered[ref.rect],
                          entry.id, &part.matches, &part.stats);
          part.verify_nanos += MonotonicNanos() - fetch_end;
        }
        return Status::Ok();
      });

  // --- Deterministic I/O attribution ---------------------------------------
  // Queries in input order; each query's fetched ids in its subtask order.
  // The first successful query to request an id is charged the physical
  // pages its one fetch read; later requests of the same id are the deduped
  // fetches. Failed queries are skipped entirely (their solo runs surface no
  // stats either), so every charge is backed by a completed fetch.
  {
    std::vector<bool> claimed(dataset_->size(), false);
    for (std::size_t i = 0; i < n; ++i) {
      if (execs[i] == nullptr) continue;
      QueryExec& q = *execs[i];
      if (q.kind == QueryExec::Kind::kKnn || q.kind == QueryExec::Kind::kJoin) {
        continue;
      }
      if (q.kind == QueryExec::Kind::kIndexed &&
          !groups[q.group_id].status.ok()) {
        continue;
      }
      if (!verify_status[i].ok()) continue;
      if (q.kind == QueryExec::Kind::kIndexed) {
        q.rect_pages.assign(groups[q.group_id].rects.size(), 0);
      }
      const auto request = [&](std::size_t id, std::size_t rect) {
        ++q.requests;
        if (!claimed[id]) {
          claimed[id] = true;
          ++q.claims;
          const std::uint64_t pages = fetch_table.pages(id);
          q.attributed_pages += pages;
          if (!q.rect_pages.empty()) q.rect_pages[rect] += pages;
        }
      };
      if (q.kind == QueryExec::Kind::kScan) {
        for (std::size_t id = 0; id < dataset_->size(); ++id) {
          if (!dataset_->removed(id)) request(id, 0);
        }
      } else {
        const TraversalGroup& group = groups[q.group_id];
        for (std::size_t g = 0; g < group.rects.size(); ++g) {
          for (const rstar::Entry& entry :
               group.rects[g].member_candidates[q.member_index]) {
            request(entry.id, g);
          }
        }
      }
      metrics.deduped_fetches->Increment(q.requests - q.claims);
    }
  }

  // --- Assembly: range queries ---------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    if (execs[i] == nullptr || staged[i].has_value()) continue;
    QueryExec& q = *execs[i];
    if (q.kind == QueryExec::Kind::kKnn || q.kind == QueryExec::Kind::kJoin) {
      continue;
    }
    if (q.kind == QueryExec::Kind::kIndexed &&
        !groups[q.group_id].status.ok()) {
      staged[i].emplace(groups[q.group_id].status);
      continue;
    }
    if (!verify_status[i].ok()) {
      staged[i].emplace(verify_status[i]);
      continue;
    }

    QueryResult out;
    RangeQueryResult result;
    QueryStats& stats = result.stats;
    obs::QueryTrace& trace = result.trace;
    trace.algorithm = AlgorithmName(q.resolved.planner.algorithm);
    trace.num_threads = q.resolved.num_threads;
    trace.at(obs::Phase::kPlan).AddTask(q.plan_nanos,
                                        q.range->transforms.size());

    const std::uint64_t merge_start = MonotonicNanos();
    for (std::size_t ti = 0; ti < q.parts.size(); ++ti) {
      VerifyPart& part = q.parts[ti];
      result.matches.insert(result.matches.end(), part.matches.begin(),
                            part.matches.end());
      stats += part.stats;
      trace.at(obs::Phase::kCandidateFetch)
          .AddTask(part.fetch_nanos, q.kind == QueryExec::Kind::kScan
                                         ? part.stats.candidates
                                         : part.fetched);
      trace.at(obs::Phase::kVerification)
          .AddTask(part.verify_nanos, part.stats.comparisons);
    }
    stats.record_pages_read = q.attributed_pages;

    if (q.kind == QueryExec::Kind::kIndexed) {
      const TraversalGroup& group = groups[q.group_id];
      const bool leader = q.member_index == 0;
      trace.batch_group_queries = group.members.size();
      trace.shared_traversal = group.members.size() >= 2;
      for (std::size_t g = 0; g < group.rects.size(); ++g) {
        const RectPass& pass = group.rects[g];
        const std::size_t member_count =
            pass.member_candidates[q.member_index].size();
        stats.candidates += member_count;
        if (leader) {
          // Shared traversal counters go to the group leader; every other
          // member reports 0 so the batch total equals the physical work.
          ++stats.traversals;
          stats.index_nodes_accessed += pass.search.nodes_accessed;
          stats.index_leaves_accessed += pass.search.leaf_nodes_accessed;
          trace.at(obs::Phase::kIndexTraversal)
              .AddTask(pass.nanos, pass.search.nodes_accessed);
        }
        if (q.resolved.collect_group_stats) {
          out.group_stats.push_back(GroupRunStats{
              (leader ? pass.search.nodes_accessed : 0) + q.rect_pages[g],
              leader ? pass.search.leaf_nodes_accessed : 0,
              q.rect_groups[g].size(), member_count});
        }
      }
    }
    stats.output_size = result.matches.size();
    trace.at(obs::Phase::kMerge)
        .AddTask(MonotonicNanos() - merge_start, result.matches.size());
    trace.total_nanos = MonotonicNanos() - batch_start;
    trace.deduped_fetches = q.requests - q.claims;
    out.value = std::move(result);
    StampTrace(&out, *this, snapshot_version, checkpoint_epoch,
               planned[i].ok() ? &*planned[i] : nullptr, n);
    staged[i].emplace(std::move(out));
  }

  // --- k-NN and join queries -----------------------------------------------
  // They run under the same pin with the batch's plan decisions (the point
  // of batching them is the shared pin + planner pass + result cache); their
  // executors keep their own solo internals.
  for (std::size_t i = 0; i < n; ++i) {
    if (execs[i] == nullptr || staged[i].has_value()) continue;
    QueryExec& q = *execs[i];
    if (q.kind != QueryExec::Kind::kKnn && q.kind != QueryExec::Kind::kJoin) {
      continue;
    }
    QueryResult out;
    if (q.kind == QueryExec::Kind::kKnn) {
      Result<KnnQueryResult> result =
          RunKnnQuery(*dataset_, *index_, std::get<KnnQuerySpec>(specs[i]),
                      q.resolved, q.partition_override);
      if (!result.ok()) {
        staged[i].emplace(result.status());
        continue;
      }
      out.value = std::move(*result);
    } else {
      Result<JoinQueryResult> result =
          RunJoinQuery(*dataset_, *index_, std::get<JoinQuerySpec>(specs[i]),
                       q.resolved, q.partition_override);
      if (!result.ok()) {
        staged[i].emplace(result.status());
        continue;
      }
      out.value = std::move(*result);
    }
    StampTrace(&out, *this, snapshot_version, checkpoint_epoch,
               planned[i].ok() ? &*planned[i] : nullptr, n);
    staged[i].emplace(std::move(out));
  }

  // --- Cache publish + in-batch duplicates ---------------------------------
  if (options.use_result_cache) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!pinned[i]) continue;
      if (staged[i].has_value() && staged[i]->ok()) {
        result_cache_->Insert(*cache_keys[i], CanonicalForCache(**staged[i]));
      }
      result_cache_->Unpin(*cache_keys[i]);
    }
    for (const Dup& dup : dups) {
      // Prefer a real cache lookup (counts the hit and refreshes the LRU);
      // fall back to the leader's staged entry when nothing was published —
      // the leader failed, or another batch owned the key.
      if (std::shared_ptr<const QueryResult> hit =
              result_cache_->Lookup(*cache_keys[dup.index])) {
        staged[dup.index].emplace(ServeCopy(*hit, n));
        continue;
      }
      const Result<QueryResult>& leader = *staged[dup.leader];
      if (!leader.ok()) {
        staged[dup.index].emplace(leader.status());
      } else {
        staged[dup.index].emplace(ServeCopy(*leader, n));
      }
    }
  }

  std::vector<Result<QueryResult>> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    results.push_back(std::move(*staged[i]));
  }
  return results;
}

}  // namespace tsq::core
