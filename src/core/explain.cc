#include "core/explain.h"

#include <sstream>

#include "obs/trace.h"

namespace tsq::core {

const obs::QueryTrace& ResultTrace(const QueryResult& result) {
  return std::visit(
      [](const auto& r) -> const obs::QueryTrace& { return r.trace; },
      result.value);
}

std::string StatsToJson(const QueryStats& stats) {
  std::ostringstream os;
  os << "{\"index_nodes_accessed\":" << stats.index_nodes_accessed
     << ",\"index_leaves_accessed\":" << stats.index_leaves_accessed
     << ",\"record_pages_read\":" << stats.record_pages_read
     << ",\"candidates\":" << stats.candidates
     << ",\"comparisons\":" << stats.comparisons
     << ",\"traversals\":" << stats.traversals
     << ",\"output_size\":" << stats.output_size
     << ",\"disk_accesses\":" << stats.disk_accesses() << '}';
  return os.str();
}

std::string Explain(const QueryResult& result) {
  const QueryStats& stats = result.stats();
  std::ostringstream os;
  os << obs::FormatTrace(ResultTrace(result));
  os << "  stats: disk_accesses=" << stats.disk_accesses()
     << " (index=" << stats.index_nodes_accessed
     << ", records=" << stats.record_pages_read << ")"
     << " candidates=" << stats.candidates
     << " comparisons=" << stats.comparisons
     << " traversals=" << stats.traversals
     << " output=" << stats.output_size << "\n";
  return os.str();
}

std::string ExplainJson(const QueryResult& result) {
  std::ostringstream os;
  os << "{\"trace\":" << obs::TraceToJson(ResultTrace(result))
     << ",\"stats\":" << StatsToJson(result.stats()) << '}';
  return os.str();
}

}  // namespace tsq::core
