#include "core/range_query.h"

#include <algorithm>

#include "common/check.h"
#include "common/clock.h"
#include "obs/trace.h"
#include "exec/parallel.h"
#include "transform/ordering.h"
#include "transform/transform_mbr.h"
#include "ts/normal_form.h"

namespace tsq::core {

namespace range_detail {

bool OrderGroupByChain(const std::vector<std::size_t>& chain,
                       std::vector<std::size_t>* group) {
  if (chain.empty()) return false;
  std::vector<std::size_t> rank(chain.size());
  for (std::size_t pos = 0; pos < chain.size(); ++pos) rank[chain[pos]] = pos;
  std::sort(group->begin(), group->end(),
            [&rank](std::size_t a, std::size_t b) { return rank[a] < rank[b]; });
  return true;
}

double PredicateDistance2(const RangeQuerySpec& spec, std::size_t t,
                          std::span<const dft::Complex> candidate_spectrum,
                          std::span<const dft::Complex> query_spectrum) {
  return spec.target == TransformTarget::kBoth
             ? spec.transforms[t].TransformedSquaredDistance(
                   candidate_spectrum, query_spectrum)
             : spec.transforms[t].TransformedToPlainSquaredDistance(
                   candidate_spectrum, query_spectrum);
}

double PredicateDistance2Within(const RangeQuerySpec& spec, std::size_t t,
                                std::span<const dft::Complex> candidate_spectrum,
                                std::span<const dft::Complex> query_spectrum,
                                double bound) {
  return spec.target == TransformTarget::kBoth
             ? spec.transforms[t].TransformedSquaredDistanceWithin(
                   candidate_spectrum, query_spectrum, bound)
             : spec.transforms[t].TransformedToPlainSquaredDistanceWithin(
                   candidate_spectrum, query_spectrum, bound);
}

void VerifyCandidate(const RangeQuerySpec& spec,
                     std::span<const dft::Complex> candidate_spectrum,
                     std::span<const dft::Complex> query_spectrum,
                     const std::vector<std::size_t>& group, bool ordered,
                     std::size_t series_id, std::vector<Match>* matches,
                     QueryStats* stats) {
  const double eps2 = spec.epsilon * spec.epsilon;
  if (ordered) {
    // Distances are non-decreasing along the chain, so the qualifying
    // transformations form a prefix: binary-search its end (Section 4.4).
    // Probe results are cached so reporting the matches costs no extra
    // comparisons beyond the O(log |group|) probes plus one evaluation per
    // reported match that the search did not already touch.
    std::vector<double> cached(group.size(),
                               -std::numeric_limits<double>::infinity());
    const auto distance2 = [&](std::size_t pos) {
      if (cached[pos] < 0.0) {
        ++stats->comparisons;
        // Abandoned evaluations cache a partial sum > eps2: non-negative (so
        // the sentinel stays unambiguous), correctly rejected by the
        // predicate, and never reported (matches have d2 < eps2, hence are
        // exact).
        cached[pos] = PredicateDistance2Within(
            spec, group[pos], candidate_spectrum, query_spectrum, eps2);
      }
      return cached[pos];
    };
    const std::size_t prefix = transform::MonotonePrefixLength(
        group.size(), [&](std::size_t pos) { return distance2(pos) < eps2; });
    for (std::size_t pos = 0; pos < prefix; ++pos) {
      matches->push_back(Match{series_id, group[pos], std::sqrt(distance2(pos))});
    }
    return;
  }
  for (const std::size_t t : group) {
    ++stats->comparisons;
    const double d2 = PredicateDistance2Within(spec, t, candidate_spectrum,
                                               query_spectrum, eps2);
    if (d2 < eps2) {
      matches->push_back(Match{series_id, t, std::sqrt(d2)});
    }
  }
}

Status ValidateRangeSpec(const Dataset& dataset, const RangeQuerySpec& spec) {
  if (spec.query.size() != dataset.length()) {
    return Status::InvalidArgument("query length does not match dataset");
  }
  if (spec.transforms.empty()) {
    return Status::InvalidArgument("no transformations in query");
  }
  // The negated form also rejects a NaN epsilon, which would otherwise
  // silently match nothing.
  if (!(spec.epsilon >= 0.0)) {
    return Status::InvalidArgument("negative or NaN distance threshold");
  }
  if (spec.query_transform.has_value() &&
      spec.query_transform->length() != dataset.length()) {
    return Status::InvalidArgument(
        "query transformation length does not match dataset");
  }
  if (spec.use_ordering && spec.target == TransformTarget::kDataOnly) {
    return Status::InvalidArgument(
        "ordering-based search requires same-transform distances "
        "(TransformTarget::kBoth)");
  }
  for (const transform::SpectralTransform& t : spec.transforms) {
    if (t.length() != dataset.length()) {
      return Status::InvalidArgument(
          "transformation length does not match dataset: " + t.label());
    }
    if (dataset.layout().use_symmetry && !t.PreservesRealSequences()) {
      return Status::InvalidArgument(
          "symmetry-based filtering requires real-preserving "
          "transformations: " +
          t.label());
    }
  }
  if (!spec.partition.empty()) {
    std::vector<bool> seen(spec.transforms.size(), false);
    for (const auto& group : spec.partition) {
      if (group.empty()) {
        return Status::InvalidArgument("empty transformation group");
      }
      for (const std::size_t t : group) {
        if (t >= spec.transforms.size() || seen[t]) {
          return Status::InvalidArgument(
              "partition is not a partition of the transformation set");
        }
        seen[t] = true;
      }
    }
    if (std::find(seen.begin(), seen.end(), false) != seen.end()) {
      return Status::InvalidArgument(
          "partition does not cover the transformation set");
    }
  }
  return Status::Ok();
}

}  // namespace range_detail

using range_detail::kScanChunk;
using range_detail::kVerifyChunk;
using range_detail::OrderGroupByChain;
using range_detail::PredicateDistance2;
using range_detail::ValidateRangeSpec;
using range_detail::VerifyCandidate;

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSequentialScan:
      return "seq-scan";
    case Algorithm::kStIndex:
      return "ST-index";
    case Algorithm::kMtIndex:
      return "MT-index";
    case Algorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

Status RejectUnresolvedAuto(const ExecOptions& options) {
  if (options.planner.algorithm == Algorithm::kAuto) {
    return Status::InvalidArgument(
        "Algorithm::kAuto must be resolved by SimilarityEngine::Execute; "
        "raw executors need a concrete algorithm");
  }
  return Status::Ok();
}

QueryStats& QueryStats::operator+=(const QueryStats& other) {
  index_nodes_accessed += other.index_nodes_accessed;
  index_leaves_accessed += other.index_leaves_accessed;
  record_pages_read += other.record_pages_read;
  candidates += other.candidates;
  comparisons += other.comparisons;
  traversals += other.traversals;
  output_size += other.output_size;
  return *this;
}

Result<RangeQueryResult> RunRangeQuery(const Dataset& dataset,
                                       const SequenceIndex& index,
                                       const RangeQuerySpec& spec,
                                       const ExecOptions& options,
                                       std::vector<GroupRunStats>* group_stats,
                                       const transform::Partition*
                                           partition_override) {
  const std::uint64_t query_start = MonotonicNanos();
  TSQ_RETURN_IF_ERROR(RejectUnresolvedAuto(options));
  TSQ_RETURN_IF_ERROR(ValidateRangeSpec(dataset, spec));
  if (group_stats != nullptr) group_stats->clear();

  RangeQueryResult result;
  QueryStats& stats = result.stats;
  obs::QueryTrace& trace = result.trace;
  trace.algorithm = AlgorithmName(options.planner.algorithm);
  trace.num_threads = options.num_threads;

  std::uint64_t plan_start = MonotonicNanos();
  const transform::FeatureLayout& layout = dataset.layout();
  const ts::NormalForm query_normal = ts::Normalize(spec.query);
  std::vector<dft::Complex> query_spectrum =
      dataset.plan().Forward(query_normal.values);
  if (spec.query_transform.has_value()) {
    query_spectrum = spec.query_transform->ApplyToSpectrum(query_spectrum);
  }
  // Mean/stddev feature slots are never constrained by the query region, so
  // reusing the raw query statistics alongside a transformed spectrum is
  // sound.
  const rstar::Point query_features =
      ExtractFeatures(query_normal, query_spectrum, layout);

  // Dominance-chain ordering for the binary-search post-processing.
  std::vector<std::size_t> chain;
  if (spec.use_ordering) {
    chain = transform::DominanceChain(spec.transforms);
  }

  if (options.planner.algorithm == Algorithm::kSequentialScan) {
    std::vector<std::size_t> all(spec.transforms.size());
    for (std::size_t t = 0; t < all.size(); ++t) all[t] = t;
    const bool ordered = spec.use_ordering && OrderGroupByChain(chain, &all);
    trace.at(obs::Phase::kPlan)
        .AddTask(MonotonicNanos() - plan_start, spec.transforms.size());

    // One task per fixed-size slice of the relation; each task accumulates
    // its own matches and counters (pages via the FetchSpectrum out-param —
    // buffer hits, tombstones and multi-page records are all accounted as
    // they actually happen), merged below in slice order.
    struct ScanPart {
      std::vector<Match> matches;
      QueryStats stats;
      std::uint64_t record_pages = 0;
      std::uint64_t fetch_nanos = 0;
      std::uint64_t verify_nanos = 0;
    };
    const std::size_t tasks = exec::ChunkCount(dataset.size(), kScanChunk);
    std::vector<ScanPart> parts(tasks);
    TSQ_RETURN_IF_ERROR(exec::ParallelFor(
        options.num_threads, tasks, [&](std::size_t task) -> Status {
          const exec::ChunkRange slice =
              exec::ChunkBounds(dataset.size(), kScanChunk, task);
          ScanPart& part = parts[task];
          for (std::size_t i = slice.first; i < slice.last; ++i) {
            if (dataset.removed(i)) continue;
            const std::uint64_t fetch_start = MonotonicNanos();
            Result<std::vector<dft::Complex>> spectrum =
                dataset.FetchSpectrum(i, &part.record_pages);
            const std::uint64_t fetch_end = MonotonicNanos();
            part.fetch_nanos += fetch_end - fetch_start;
            if (!spectrum.ok()) return spectrum.status();
            ++part.stats.candidates;  // sequences actually evaluated
            VerifyCandidate(spec, *spectrum, query_spectrum, all, ordered, i,
                            &part.matches, &part.stats);
            part.verify_nanos += MonotonicNanos() - fetch_end;
          }
          return Status::Ok();
        }));
    const std::uint64_t merge_start = MonotonicNanos();
    for (ScanPart& part : parts) {
      result.matches.insert(result.matches.end(), part.matches.begin(),
                            part.matches.end());
      stats += part.stats;
      stats.record_pages_read += part.record_pages;
      trace.at(obs::Phase::kCandidateFetch)
          .AddTask(part.fetch_nanos, part.stats.candidates);
      trace.at(obs::Phase::kVerification)
          .AddTask(part.verify_nanos, part.stats.comparisons);
    }
    stats.output_size = result.matches.size();
    trace.at(obs::Phase::kMerge)
        .AddTask(MonotonicNanos() - merge_start, result.matches.size());
    trace.total_nanos = MonotonicNanos() - query_start;
    return result;
  }

  // Indexed algorithms: ST-index is MT-index with singleton rectangles. A
  // planner-chosen partition (the override) takes precedence over the
  // spec's; both lose to ST-index's fixed singleton grouping.
  transform::Partition partition;
  if (options.planner.algorithm == Algorithm::kStIndex) {
    partition = transform::PartitionSingletons(spec.transforms.size());
  } else if (partition_override != nullptr && !partition_override->empty()) {
    partition = *partition_override;
  } else if (spec.partition.empty()) {
    partition = transform::PartitionAll(spec.transforms.size());
  } else {
    partition = spec.partition;
  }

  // Feature-space projections of all transformations, built once.
  std::vector<transform::FeatureTransform> feature_transforms;
  feature_transforms.reserve(spec.transforms.size());
  for (const transform::SpectralTransform& t : spec.transforms) {
    feature_transforms.push_back(t.ToFeatureTransform(layout));
  }
  trace.at(obs::Phase::kPlan)
      .AddTask(MonotonicNanos() - plan_start, spec.transforms.size());

  // Phase A — one task per transformation rectangle: build the group MBR and
  // query region, run the index traversal (Algorithm 1, steps 3-4), keep the
  // candidates. Traversals only read tree pages, so they run concurrently.
  struct GroupPass {
    std::vector<std::size_t> group;  // chain-ordered when `ordered`
    bool ordered = false;
    std::vector<rstar::Entry> candidates;
    rstar::SearchStats search;
    std::uint64_t nanos = 0;
  };
  std::vector<GroupPass> passes(partition.size());
  TSQ_RETURN_IF_ERROR(exec::ParallelFor(
      options.num_threads, partition.size(), [&](std::size_t g) -> Status {
        GroupPass& pass = passes[g];
        const std::uint64_t task_start = MonotonicNanos();
        pass.group = partition[g];
        pass.ordered =
            spec.use_ordering && OrderGroupByChain(chain, &pass.group);
        std::vector<transform::FeatureTransform> group_fts;
        group_fts.reserve(pass.group.size());
        for (const std::size_t t : pass.group) {
          group_fts.push_back(feature_transforms[t]);
        }
        const transform::TransformMbr mbr(group_fts, layout);
        // kBoth: the query region covers every transformed query image t(q).
        // kDataOnly: the query is compared untransformed, so the region is
        // the paper's literal step 2 — a safe window around q itself.
        const std::vector<transform::FeatureTransform> identity = {
            transform::FeatureTransform::Identity(layout.dimensions())};
        const rstar::Rect query_region = BuildQueryRegion(
            query_features,
            spec.target == TransformTarget::kBoth
                ? std::span<const transform::FeatureTransform>(group_fts)
                : std::span<const transform::FeatureTransform>(identity),
            spec.epsilon, layout);
        Status status = index.tree().Search(
            [&](const rstar::Rect& rect) {
              return mbr.AppliedIntersects(rect, query_region);
            },
            &pass.candidates, &pass.search);
        pass.nanos = MonotonicNanos() - task_start;
        return status;
      }));

  // Phase B — post-processing (step 5): fetch each candidate's full record
  // and apply every transformation of its rectangle. One task per fixed-size
  // candidate chunk; tasks are laid out group-major so the ordered merge
  // reproduces the sequential output exactly.
  struct VerifyTask {
    std::size_t group_index = 0;
    exec::ChunkRange range;
  };
  std::vector<VerifyTask> tasks;
  for (std::size_t g = 0; g < passes.size(); ++g) {
    const std::size_t chunks =
        exec::ChunkCount(passes[g].candidates.size(), kVerifyChunk);
    for (std::size_t c = 0; c < chunks; ++c) {
      tasks.push_back(VerifyTask{
          g, exec::ChunkBounds(passes[g].candidates.size(), kVerifyChunk, c)});
    }
  }
  struct VerifyPart {
    std::vector<Match> matches;
    QueryStats stats;                 // comparisons only
    std::uint64_t record_pages = 0;   // pages read by this task's fetches
    std::uint64_t fetch_nanos = 0;
    std::uint64_t verify_nanos = 0;
    std::uint64_t fetched = 0;        // candidates fetched by this task
  };
  std::vector<VerifyPart> parts(tasks.size());
  TSQ_RETURN_IF_ERROR(exec::ParallelFor(
      options.num_threads, tasks.size(), [&](std::size_t ti) -> Status {
        const VerifyTask& task = tasks[ti];
        const GroupPass& pass = passes[task.group_index];
        VerifyPart& part = parts[ti];
        for (std::size_t c = task.range.first; c < task.range.last; ++c) {
          const rstar::Entry& entry = pass.candidates[c];
          const std::uint64_t fetch_start = MonotonicNanos();
          Result<std::vector<dft::Complex>> spectrum =
              dataset.FetchSpectrum(entry.id, &part.record_pages);
          const std::uint64_t fetch_end = MonotonicNanos();
          part.fetch_nanos += fetch_end - fetch_start;
          if (!spectrum.ok()) return spectrum.status();
          ++part.fetched;
          VerifyCandidate(spec, *spectrum, query_spectrum, pass.group,
                          pass.ordered, entry.id, &part.matches, &part.stats);
          part.verify_nanos += MonotonicNanos() - fetch_end;
        }
        return Status::Ok();
      }));

  // Deterministic merge: task order is group-major chunk order.
  const std::uint64_t merge_start = MonotonicNanos();
  std::vector<std::uint64_t> group_record_reads(passes.size(), 0);
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    VerifyPart& part = parts[ti];
    result.matches.insert(result.matches.end(), part.matches.begin(),
                          part.matches.end());
    stats += part.stats;
    stats.record_pages_read += part.record_pages;
    group_record_reads[tasks[ti].group_index] += part.record_pages;
    trace.at(obs::Phase::kCandidateFetch)
        .AddTask(part.fetch_nanos, part.fetched);
    trace.at(obs::Phase::kVerification)
        .AddTask(part.verify_nanos, part.stats.comparisons);
  }
  for (std::size_t g = 0; g < passes.size(); ++g) {
    const GroupPass& pass = passes[g];
    ++stats.traversals;
    stats.index_nodes_accessed += pass.search.nodes_accessed;
    stats.index_leaves_accessed += pass.search.leaf_nodes_accessed;
    stats.candidates += pass.candidates.size();
    trace.at(obs::Phase::kIndexTraversal)
        .AddTask(pass.nanos, pass.search.nodes_accessed);
    if (group_stats != nullptr) {
      group_stats->push_back(GroupRunStats{
          pass.search.nodes_accessed + group_record_reads[g],
          pass.search.leaf_nodes_accessed, pass.group.size(),
          pass.candidates.size()});
    }
  }
  stats.output_size = result.matches.size();
  trace.at(obs::Phase::kMerge)
      .AddTask(MonotonicNanos() - merge_start, result.matches.size());
  trace.total_nanos = MonotonicNanos() - query_start;
  return result;
}

Result<RangeQueryResult> RunRangeQuery(const Dataset& dataset,
                                       const SequenceIndex& index,
                                       const RangeQuerySpec& spec,
                                       Algorithm algorithm,
                                       std::vector<GroupRunStats>* group_stats) {
  ExecOptions options;
  options.planner.algorithm = algorithm;
  options.num_threads = 1;
  options.collect_group_stats = group_stats != nullptr;
  return RunRangeQuery(dataset, index, spec, options, group_stats);
}

std::vector<Match> BruteForceRangeQuery(const Dataset& dataset,
                                        const RangeQuerySpec& spec) {
  TSQ_CHECK_EQ(spec.query.size(), dataset.length());
  const ts::NormalForm query_normal = ts::Normalize(spec.query);
  std::vector<dft::Complex> query_spectrum =
      dataset.plan().Forward(query_normal.values);
  if (spec.query_transform.has_value()) {
    query_spectrum = spec.query_transform->ApplyToSpectrum(query_spectrum);
  }
  const double eps2 = spec.epsilon * spec.epsilon;
  std::vector<Match> matches;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.removed(i)) continue;
    for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
      const double d2 = PredicateDistance2(spec, t, dataset.spectrum(i),
                                           query_spectrum);
      if (d2 < eps2) matches.push_back(Match{i, t, std::sqrt(d2)});
    }
  }
  return matches;
}

void SortMatches(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const Match& a, const Match& b) {
              if (a.series_id != b.series_id) return a.series_id < b.series_id;
              return a.transform_index < b.transform_index;
            });
}

}  // namespace tsq::core
