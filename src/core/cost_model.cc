#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "transform/transform_mbr.h"

namespace tsq::core {

double CostEq20(std::span<const GroupRunStats> groups, double leaf_capacity,
                const CostConstants& constants) {
  double da_term = 0.0;
  double cmp_term = 0.0;
  for (const GroupRunStats& g : groups) {
    da_term += static_cast<double>(g.da_all);
    cmp_term += static_cast<double>(g.da_leaf) *
                static_cast<double>(g.transforms);
  }
  return constants.c_da * da_term +
         leaf_capacity * constants.c_cmp * cmp_term;
}

TreeCostEstimator::TreeCostEstimator(const SequenceIndex& index) {
  const std::size_t dims = index.tree().dimensions();
  const auto root_rect = index.tree().RootRect();
  domain_ = root_rect.has_value() ? *root_rect : rstar::Rect::Empty(dims);
  leaf_capacity_ = index.AverageLeafCapacity();

  const Status status =
      index.tree().VisitNodes([&](const rstar::RStarTree::NodeView& view) {
        if (view.level >= levels_.size()) {
          levels_.resize(view.level + 1);
          for (LevelStats& level : levels_) {
            if (level.avg_extent.empty()) {
              level.avg_extent.assign(dims, 0.0);
              level.avg_abs_center.assign(dims, 0.0);
            }
          }
        }
        LevelStats& level = levels_[view.level];
        ++level.node_count;
        rstar::Rect rect = view.entries.front().rect;
        for (std::size_t i = 1; i < view.entries.size(); ++i) {
          rect.Enlarge(view.entries[i].rect);
        }
        for (std::size_t d = 0; d < dims; ++d) {
          level.avg_extent[d] += rect.Extent(d);
          level.avg_abs_center[d] += std::fabs(rect.Center(d));
        }
      });
  TSQ_CHECK(status.ok()) << status.ToString();
  for (LevelStats& level : levels_) {
    if (level.node_count == 0) continue;
    for (std::size_t d = 0; d < level.avg_extent.size(); ++d) {
      level.avg_extent[d] /= static_cast<double>(level.node_count);
      level.avg_abs_center[d] /= static_cast<double>(level.node_count);
    }
  }
}

TreeCostEstimator::Estimate TreeCostEstimator::EstimateTraversal(
    std::span<const transform::FeatureTransform> group, double epsilon,
    const transform::FeatureLayout& layout) const {
  Estimate estimate;
  if (levels_.empty() || group.empty()) return estimate;
  const std::size_t dims = layout.dimensions();
  const transform::TransformMbr mbr(group, layout);

  for (std::size_t level = 0; level < levels_.size(); ++level) {
    const LevelStats& stats = levels_[level];
    if (stats.node_count == 0) continue;
    double probability = 1.0;
    for (std::size_t d = 0; d < dims; ++d) {
      const double domain = domain_.Extent(d);
      if (domain <= 0.0) continue;  // degenerate dimension filters nothing
      if (layout.include_mean_std &&
          (d == layout.mean_dimension() || d == layout.stddev_dimension())) {
        continue;  // the query region is unbounded on these dimensions
      }
      // Extent of the average node rectangle after the transformation MBR:
      // the multiplicative interval stretches positions by (Mh - Ml)*|c|
      // and widths by the mid multiplier; the additive interval adds its
      // own width.
      const double mult_mid = 0.5 * (mbr.mult_low(d) + mbr.mult_high(d));
      const double mult_spread = mbr.mult_high(d) - mbr.mult_low(d);
      const double add_spread = mbr.add_high(d) - mbr.add_low(d);
      const double transformed_extent =
          std::fabs(mult_mid) * stats.avg_extent[d] +
          mult_spread * stats.avg_abs_center[d] + add_spread;
      // Query window extent along d: 2 epsilon around the transformed query
      // (the angular window is epsilon-dependent too; 2 epsilon is a
      // serviceable proxy for ranking partitions).
      const double window = 2.0 * epsilon;
      probability *= std::min(1.0, (transformed_extent + window) / domain);
    }
    const double accesses =
        static_cast<double>(stats.node_count) * probability;
    estimate.da_all += accesses;
    if (level == 0) estimate.da_leaf += accesses;
  }
  return estimate;
}

double EstimateGroupCost(const TreeCostEstimator& estimator,
                         std::span<const transform::FeatureTransform> group,
                         double epsilon,
                         const transform::FeatureLayout& layout,
                         const CostConstants& constants) {
  const TreeCostEstimator::Estimate estimate =
      estimator.EstimateTraversal(group, epsilon, layout);
  return constants.c_da * estimate.da_all +
         estimator.leaf_capacity() * constants.c_cmp * estimate.da_leaf *
             static_cast<double>(group.size());
}

}  // namespace tsq::core
