#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "transform/transform_mbr.h"

namespace tsq::core {

double CostEq20(std::span<const GroupRunStats> groups, double leaf_capacity,
                const CostConstants& constants) {
  double da_term = 0.0;
  double cmp_term = 0.0;
  for (const GroupRunStats& g : groups) {
    da_term += static_cast<double>(g.da_all);
    cmp_term += static_cast<double>(g.da_leaf) *
                static_cast<double>(g.transforms);
  }
  return constants.c_da * da_term +
         leaf_capacity * constants.c_cmp * cmp_term;
}

TreeCostEstimator::TreeCostEstimator(const SequenceIndex& index) {
  const Status status = Init(index);
  TSQ_CHECK(status.ok()) << status.ToString();
}

Result<TreeCostEstimator> TreeCostEstimator::Create(
    const SequenceIndex& index) {
  TreeCostEstimator estimator;
  TSQ_RETURN_IF_ERROR(estimator.Init(index));
  return estimator;
}

double TreeCostEstimator::indexed_points() const {
  if (levels_.empty()) return 0.0;
  return leaf_capacity_ * static_cast<double>(levels_.front().node_count);
}

double TreeCostEstimator::total_nodes() const {
  double nodes = 0.0;
  for (const LevelStats& level : levels_) {
    nodes += static_cast<double>(level.node_count);
  }
  return nodes;
}

Status TreeCostEstimator::Init(const SequenceIndex& index) {
  const std::size_t dims = index.tree().dimensions();
  const auto root_rect = index.tree().RootRect();
  domain_ = root_rect.has_value() ? *root_rect : rstar::Rect::Empty(dims);
  leaf_capacity_ = index.AverageLeafCapacity();

  const Status status =
      index.tree().VisitNodes([&](const rstar::RStarTree::NodeView& view) {
        if (view.level >= levels_.size()) {
          levels_.resize(view.level + 1);
          for (LevelStats& level : levels_) {
            if (level.avg_extent.empty()) {
              level.avg_extent.assign(dims, 0.0);
              level.avg_abs_center.assign(dims, 0.0);
            }
          }
        }
        LevelStats& level = levels_[view.level];
        ++level.node_count;
        rstar::Rect rect = view.entries.front().rect;
        for (std::size_t i = 1; i < view.entries.size(); ++i) {
          rect.Enlarge(view.entries[i].rect);
        }
        for (std::size_t d = 0; d < dims; ++d) {
          level.avg_extent[d] += rect.Extent(d);
          level.avg_abs_center[d] += std::fabs(rect.Center(d));
        }
      });
  TSQ_RETURN_IF_ERROR(status);
  for (LevelStats& level : levels_) {
    if (level.node_count == 0) continue;
    for (std::size_t d = 0; d < level.avg_extent.size(); ++d) {
      level.avg_extent[d] /= static_cast<double>(level.node_count);
      level.avg_abs_center[d] /= static_cast<double>(level.node_count);
    }
  }
  return Status::Ok();
}

TreeCostEstimator::Estimate TreeCostEstimator::EstimateTraversal(
    std::span<const transform::FeatureTransform> group, double epsilon,
    const transform::FeatureLayout& layout) const {
  Estimate estimate;
  if (levels_.empty() || group.empty()) return estimate;
  const std::size_t dims = layout.dimensions();
  const transform::TransformMbr mbr(group, layout);
  // Leaf-level typical values stand in for the (unknown at planning time)
  // query's features: queries are dataset-like sequences, so the average
  // absolute leaf-node center is a serviceable |q_d| proxy.
  const LevelStats& leaf = levels_.front();

  // Per-dimension extent of the query region this group would produce,
  // mirroring BuildQueryRegion: the spread of the transformed query features
  // across the group (the mult-/add-MBR applied to a typical query), widened
  // by the reverse-triangle bound (2 epsilon) on magnitude dimensions and by
  // the chord bound (2 asin(eps / 2|q_d|) half-width) on angle dimensions.
  // A negative sentinel marks dimensions the region leaves unbounded.
  std::vector<double> window(dims, -1.0);
  for (std::size_t d = 0; d < dims; ++d) {
    if (layout.include_mean_std &&
        (d == layout.mean_dimension() || d == layout.stddev_dimension())) {
      continue;  // the query region is unbounded on these dimensions
    }
    const double mult_spread = mbr.mult_high(d) - mbr.mult_low(d);
    const double add_spread = mbr.add_high(d) - mbr.add_low(d);
    if (layout.is_angle_dimension(d)) {
      // The paired magnitude dimension sits right below the angle one.
      const double radius = std::max(leaf.avg_abs_center[d - 1], 1e-9);
      const double half_width =
          2.0 * std::asin(std::min(1.0, 0.5 * epsilon / radius));
      window[d] = add_spread + 2.0 * half_width;
    } else {
      window[d] = mult_spread * leaf.avg_abs_center[d] + 2.0 * epsilon;
    }
  }

  for (std::size_t level = 0; level < levels_.size(); ++level) {
    const LevelStats& stats = levels_[level];
    if (stats.node_count == 0) continue;
    double probability = 1.0;
    for (std::size_t d = 0; d < dims; ++d) {
      const double domain = domain_.Extent(d);
      if (domain <= 0.0) continue;  // degenerate dimension filters nothing
      if (window[d] < 0.0) continue;  // unbounded: filters nothing
      // Extent of the average node rectangle after the transformation MBR:
      // the multiplicative interval stretches positions by (Mh - Ml)*|c|
      // and widths by the mid multiplier; the additive interval adds its
      // own width.
      const double mult_mid = 0.5 * (mbr.mult_low(d) + mbr.mult_high(d));
      const double mult_spread = mbr.mult_high(d) - mbr.mult_low(d);
      const double add_spread = mbr.add_high(d) - mbr.add_low(d);
      const double transformed_extent =
          std::fabs(mult_mid) * stats.avg_extent[d] +
          mult_spread * stats.avg_abs_center[d] + add_spread;
      probability *=
          std::min(1.0, (transformed_extent + window[d]) / domain);
    }
    const double accesses =
        static_cast<double>(stats.node_count) * probability;
    estimate.da_all += accesses;
    if (level == 0) estimate.da_leaf += accesses;
  }

  // Per-point hit probability: a leaf *entry* is a point (zero extent); its
  // transformed image spreads only by the group's mult/add intervals around
  // the typical feature value.
  double point_probability = 1.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double domain = domain_.Extent(d);
    if (domain <= 0.0) continue;
    if (window[d] < 0.0) continue;
    const double mult_spread = mbr.mult_high(d) - mbr.mult_low(d);
    const double add_spread = mbr.add_high(d) - mbr.add_low(d);
    const double image_extent =
        mult_spread * leaf.avg_abs_center[d] + add_spread;
    point_probability *= std::min(1.0, (image_extent + window[d]) / domain);
  }
  estimate.hit_fraction = point_probability;
  return estimate;
}

double EstimateGroupCost(const TreeCostEstimator& estimator,
                         std::span<const transform::FeatureTransform> group,
                         double epsilon,
                         const transform::FeatureLayout& layout,
                         const CostConstants& constants) {
  const TreeCostEstimator::Estimate estimate =
      estimator.EstimateTraversal(group, epsilon, layout);
  // Eq. 19 with CA_leaf * DA_leaf sharpened to the expected candidate count:
  // on small trees every leaf page intersects every region and the paper's
  // leaf-page bound stops discriminating, while the per-point hit fraction
  // still does.
  const double candidates =
      std::min(estimate.hit_fraction * estimator.indexed_points(),
               estimator.indexed_points());
  return constants.c_da * estimate.da_all +
         constants.c_cmp * candidates * static_cast<double>(group.size());
}

}  // namespace tsq::core
