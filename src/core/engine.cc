#include "core/engine.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/clock.h"
#include "core/cost_model.h"
#include "core/result_cache.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "plan/planner.h"
#include "storage/atomic_file.h"

namespace tsq::core {

namespace {
// v2: engine checkpoints are epoch-named file trios bound together by a
// `<prefix>.manifest` (see SaveTo). v1 metas were written in place with no
// manifest and no atomicity; they are no longer produced or accepted.
constexpr int kMetaVersion = 2;
constexpr int kManifestVersion = 1;

// Engine-level instruments, resolved once (registry pointers are stable for
// the life of the process). The write counters count *commits*: a
// compensated write (insert rolled back, remove that needed a rebuild)
// increments `rollbacks`; `removes` counts every remove that returned Ok,
// compensated or not, while a rolled-back insert counts only as a rollback
// (the caller got an error and no id).
struct EngineMetrics {
  obs::Counter* queries;
  obs::Counter* query_errors;
  obs::Histogram* query_nanos;
  obs::Counter* inserts;
  obs::Counter* removes;
  obs::Counter* rollbacks;
  // Checkpoint lifecycle: committed SaveTo / successful LoadFrom calls,
  // loads that found (and cleaned) debris of a torn save, and loads
  // rejected because a file did not match its manifest digest.
  obs::Counter* checkpoint_saves;
  obs::Counter* checkpoint_loads;
  obs::Counter* checkpoint_crash_recoveries;
  obs::Counter* checkpoint_manifest_mismatches;

  static const EngineMetrics& Get() {
    static const EngineMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return EngineMetrics{
          registry.counter("engine.queries"),
          registry.counter("engine.query_errors"),
          registry.histogram("engine.query_nanos"),
          registry.counter("engine.writes.inserts"),
          registry.counter("engine.writes.removes"),
          registry.counter("engine.writes.rollbacks"),
          registry.counter("engine.checkpoint.saves"),
          registry.counter("engine.checkpoint.loads"),
          registry.counter("engine.checkpoint.crash_recoveries"),
          registry.counter("engine.checkpoint.manifest_mismatches")};
    }();
    return metrics;
  }
};

// --- checkpoint manifest -----------------------------------------------------

/// What `<prefix>.manifest` records: the committed epoch and the digest of
/// each file of that epoch's trio. The manifest is written last and renamed
/// into place atomically, so its content *is* the definition of the current
/// checkpoint.
struct Manifest {
  std::uint64_t epoch = 0;
  storage::FileDigest records;
  storage::FileDigest index;
  storage::FileDigest meta;
};

std::string ManifestPath(const std::string& prefix) {
  return prefix + ".manifest";
}

std::string EpochFilePath(const std::string& prefix, std::uint64_t epoch,
                          const char* suffix) {
  return prefix + "." + std::to_string(epoch) + suffix;
}

/// The manifest's one and only serialization; SaveTo writes it and
/// ReadManifest demands it byte-for-byte.
std::string RenderManifest(const Manifest& manifest) {
  std::ostringstream text;
  text << "tsqckpt " << kManifestVersion << "\n";
  text << "epoch " << manifest.epoch << "\n";
  text << "records " << manifest.records.size << " " << manifest.records.fnv1a
       << "\n";
  text << "index " << manifest.index.size << " " << manifest.index.fnv1a
       << "\n";
  text << "meta " << manifest.meta.size << " " << manifest.meta.fnv1a << "\n";
  return text.str();
}

Result<Manifest> ReadManifest(const std::string& prefix) {
  const std::string path = ManifestPath(prefix);
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IoError("cannot open checkpoint manifest: " + path);
  }
  const std::string raw((std::istreambuf_iterator<char>(file)),
                        std::istreambuf_iterator<char>());
  const auto bad = [&](const char* what) {
    return Status::Corruption(std::string("malformed checkpoint manifest (") +
                              what + "): " + path);
  };
  std::istringstream in(raw);
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "tsqckpt" ||
      version != kManifestVersion) {
    return bad("header");
  }
  Manifest manifest;
  if (!(in >> tag >> manifest.epoch) || tag != "epoch" ||
      manifest.epoch == 0) {
    return bad("epoch");
  }
  const std::pair<const char*, storage::FileDigest*> entries[] = {
      {"records", &manifest.records},
      {"index", &manifest.index},
      {"meta", &manifest.meta}};
  for (const auto& [name, digest] : entries) {
    if (!(in >> tag >> digest->size >> digest->fnv1a) || tag != name) {
      return bad(name);
    }
  }
  // The parse above is lenient about whitespace and trailing bytes; the
  // commit point of the whole checkpoint deserves better. Re-render the
  // parsed manifest and demand the file is byte-for-byte canonical, so any
  // at-rest mutation — even one the tokenizer would shrug off — is rejected.
  if (raw != RenderManifest(manifest)) {
    return bad("non-canonical bytes");
  }
  return manifest;
}

/// Checkpoint files under `prefix` that the epoch-`keep` manifest does not
/// reference: trios of other epochs and `.tmp` leftovers of torn writes.
/// `keep == 0` matches nothing (everything checkpoint-like is stale).
std::vector<std::filesystem::path> StaleCheckpointFiles(
    const std::string& prefix, std::uint64_t keep) {
  namespace fs = std::filesystem;
  std::vector<fs::path> stale;
  const fs::path prefix_path(prefix);
  const std::string base = prefix_path.filename().string();
  fs::path dir = prefix_path.parent_path();
  if (dir.empty()) dir = ".";
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= base.size() + 1 || name.compare(0, base.size(), base) != 0 ||
        name[base.size()] != '.') {
      continue;
    }
    std::string rest = name.substr(base.size() + 1);  // "3.records", ...
    if (rest == "manifest") continue;
    const bool tmp = rest.size() > 4 && rest.ends_with(".tmp");
    if (tmp) rest.resize(rest.size() - 4);
    if (rest == "manifest") {  // a torn manifest write
      stale.push_back(entry.path());
      continue;
    }
    const std::size_t dot = rest.find('.');
    if (dot == std::string::npos || dot == 0) continue;
    const std::string digits = rest.substr(0, dot);
    const std::string suffix = rest.substr(dot);
    if (suffix != ".records" && suffix != ".index" && suffix != ".meta") {
      continue;
    }
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    const std::uint64_t epoch = std::strtoull(digits.c_str(), nullptr, 10);
    if (tmp || epoch != keep) stale.push_back(entry.path());
  }
  return stale;
}
}  // namespace

SimilarityEngine::SimilarityEngine(std::vector<ts::Series> series,
                                   Options options) {
  dataset_ = std::make_unique<Dataset>(std::move(series), options.layout);
  index_ = std::make_unique<SequenceIndex>(*dataset_, options.tree);
  planner_ = std::make_unique<plan::Planner>(*dataset_, *index_);
  result_cache_ = std::make_unique<ResultCache>();
}

SimilarityEngine::SimilarityEngine()
    : result_cache_(std::make_unique<ResultCache>()) {}

SimilarityEngine::~SimilarityEngine() = default;

Result<std::size_t> SimilarityEngine::Insert(const ts::Series& series) {
  if (series.size() != dataset_->length()) {
    return Status::InvalidArgument("series length does not match dataset");
  }
  const EngineMetrics& metrics = EngineMetrics::Get();
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  const Result<std::size_t> appended = dataset_->Append(series);
  // A failed append is failure-atomic on its own: nothing was recorded, no
  // version bump, nothing to compensate.
  if (!appended.ok()) return appended.status();
  const std::size_t id = *appended;
  const Status inserted = index_->InsertEntry(id);
  if (!inserted.ok()) {
    // Compensate: tombstone the appended id so it can never match a query,
    // then rebuild the index — a tree insertion that failed mid-restructure
    // (forced reinsert removes entries before putting them back) can have
    // dropped *unrelated* live entries, which the tombstone alone cannot
    // repair. Rebuild only writes pages, so it succeeds even while a
    // read-fault hook is firing.
    const Status tombstoned = dataset_->MarkRemoved(id);
    TSQ_CHECK(tombstoned.ok()) << tombstoned.ToString();
    const Status rebuilt = index_->Rebuild();
    TSQ_CHECK(rebuilt.ok()) << rebuilt.ToString();
    planner_->BumpEpoch();     // the rebuilt tree prices differently
    snapshots_.BumpVersion();  // the tombstone is visible state
    metrics.rollbacks->Increment();
    return inserted;
  }
  planner_->BumpEpoch();  // cached plans priced the old tree
  snapshots_.BumpVersion();
  metrics.inserts->Increment();
  return id;
}

Status SimilarityEngine::Remove(std::size_t id) {
  const EngineMetrics& metrics = EngineMetrics::Get();
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  // The liveness check runs under the same lock as the commit below, so two
  // racing Remove(id) calls resolve deterministically: one Ok, one NotFound.
  if (id >= dataset_->size() || dataset_->removed(id)) {
    return Status::NotFound("no such live sequence");
  }
  // The tombstone is the commit point: every executor (and the test oracle)
  // filters removed ids, so from here on the sequence is gone from query
  // results regardless of what the index still says about it. MarkRemoved
  // cannot fail for an id the check above just validated.
  const Status tombstoned = dataset_->MarkRemoved(id);
  TSQ_CHECK(tombstoned.ok()) << tombstoned.ToString();
  const Status removed = index_->RemoveEntry(id);
  if (!removed.ok()) {
    // A clean failure (tree untouched) merely leaves a stale — filtered,
    // harmless — leaf entry; a failure during orphan reinsertion can have
    // dropped live entries. Rebuilding covers both without distinguishing.
    const Status rebuilt = index_->Rebuild();
    TSQ_CHECK(rebuilt.ok()) << rebuilt.ToString();
    metrics.rollbacks->Increment();
  }
  planner_->BumpEpoch();
  snapshots_.BumpVersion();
  metrics.removes->Increment();
  return Status::Ok();
}

const QueryStats& QueryResult::stats() const {
  return std::visit(
      [](const auto& result) -> const QueryStats& { return result.stats; },
      value);
}

const obs::QueryTrace& QueryResult::trace() const {
  return std::visit(
      [](const auto& result) -> const obs::QueryTrace& {
        return result.trace;
      },
      value);
}

Result<QueryResult> SimilarityEngine::Execute(const QuerySpec& spec,
                                              const ExecOptions& options) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  const std::uint64_t start = MonotonicNanos();
  metrics.queries->Increment();

  // Pin a read snapshot for the whole execution (planning included): writers
  // are held off until every pin drains, so the (dataset, index, plan-cache
  // epoch) triple cannot change under this query. The pinned version is
  // stamped into the result trace below.
  const SnapshotManager::ReadPin pin = snapshots_.PinRead();

  // Resolve kAuto into a concrete plan. A forced algorithm passes through
  // the planner too, but short-circuits into an unplanned decision there, so
  // forced execution is byte-identical to the pre-planner behaviour.
  Result<plan::Planned> planned = std::visit(
      [&](const auto& s) { return planner_->Plan(s, options.planner); }, spec);
  if (!planned.ok()) {
    metrics.query_errors->Increment();
    return planned.status();
  }
  const std::shared_ptr<const plan::PlanDecision> decision =
      planned->decision;
  ExecOptions resolved = options;
  resolved.planner.algorithm = decision->algorithm;
  const transform::Partition* partition_override =
      decision->partition.empty() ? nullptr : &decision->partition;

  QueryResult out;
  if (const auto* range = std::get_if<RangeQuerySpec>(&spec)) {
    Result<RangeQueryResult> result = RunRangeQuery(
        *dataset_, *index_, *range, resolved,
        options.collect_group_stats ? &out.group_stats : nullptr,
        partition_override);
    if (!result.ok()) {
      metrics.query_errors->Increment();
      return result.status();
    }
    out.value = std::move(*result);
  } else if (const auto* knn = std::get_if<KnnQuerySpec>(&spec)) {
    Result<KnnQueryResult> result = RunKnnQuery(*dataset_, *index_, *knn,
                                                resolved, partition_override);
    if (!result.ok()) {
      metrics.query_errors->Increment();
      return result.status();
    }
    out.value = std::move(*result);
  } else {
    Result<JoinQueryResult> result =
        RunJoinQuery(*dataset_, *index_, std::get<JoinQuerySpec>(spec),
                     resolved, partition_override);
    if (!result.ok()) {
      metrics.query_errors->Increment();
      return result.status();
    }
    out.value = std::move(*result);
  }

  obs::QueryTrace& trace = std::visit(
      [](auto& result) -> obs::QueryTrace& { return result.trace; },
      out.value);
  trace.snapshot_version = pin.version();
  trace.checkpoint_epoch = checkpoint_epoch_.load(std::memory_order_relaxed);
  trace.kernel_isa = kernels::IsaName(kernels::ActiveIsa());
  if (decision->trace.planned) {
    trace.planner = decision->trace;
    trace.planner.cache_hit = planned->cache_hit;
    // Actual cost in the estimate's own currency: measured disk accesses
    // plus weighted comparisons (what the planner's Eq. 18-20 pricing
    // predicts, with real counters substituted for the analytic terms).
    const QueryStats& stats = out.stats();
    trace.planner.actual_cost =
        decision->constants.c_da * static_cast<double>(stats.disk_accesses()) +
        decision->constants.c_cmp * static_cast<double>(stats.comparisons);
  }

  metrics.query_nanos->Observe(MonotonicNanos() - start);
  return out;
}

void SimilarityEngine::ResetIoStats() {
  // Each reset goes through the same atomics the hot paths update, so a
  // concurrent reader never sees a torn value — but a query running *across*
  // the reset would be attributed partly to the old epoch and partly to the
  // new one, which is why the thread-safety contract excludes that
  // interleaving (see engine.h and docs/ARCHITECTURE.md).
  dataset_->ResetRecordIo();
  index_->ResetIndexIo();
  if (storage::BufferPool* pool = index_->buffer_pool()) {
    pool->ResetStats();
  }
}

void SimilarityEngine::SetSimulatedDiskLatency(std::uint64_t nanos) {
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  dataset_->set_io_delay_nanos(nanos);
  index_->set_io_delay_nanos(nanos);
  // C_cmp was measured against the old page-read latency.
  planner_->InvalidateCalibration();
  config_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void SimilarityEngine::EnableIndexBufferPool(std::size_t pages,
                                             std::size_t shards) {
  // The write lock waits out in-flight queries: swapping the pool under a
  // running traversal would hand it freed pages.
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  index_->EnableBufferPool(pages, shards);
  config_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void SimilarityEngine::SetReadFaultHook(storage::FaultHook* hook) {
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  dataset_->SetReadFaultHook(hook);
  index_->SetReadFaultHook(hook);
  config_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void SimilarityEngine::SetCheckpointFaultHook(storage::FaultHook* hook) {
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  checkpoint_hook_ = hook;
}

Status SimilarityEngine::SaveTo(const std::string& prefix) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  // Pin a snapshot so the whole trio describes one committed state even
  // while writers are active.
  const SnapshotManager::ReadPin pin = snapshots_.PinRead();
  storage::FaultHook* hook = checkpoint_hook_;

  // Pick an epoch no manifest on disk could be referencing. The engine's
  // own counter is not enough: a save that "crashed" after the manifest
  // rename committed an epoch this engine never learned about, and reusing
  // that number would overwrite files the live manifest points at.
  std::uint64_t last = checkpoint_epoch_.load(std::memory_order_relaxed);
  if (const Result<Manifest> on_disk = ReadManifest(prefix); on_disk.ok()) {
    last = std::max(last, on_disk->epoch);
  }
  const std::uint64_t epoch = last + 1;

  // The trio, every file write-temp/fsync/renamed. Until the manifest below
  // commits, nothing here is reachable by LoadFrom.
  Manifest manifest;
  manifest.epoch = epoch;
  TSQ_RETURN_IF_ERROR(dataset_->SaveRecordsTo(
      EpochFilePath(prefix, epoch, ".records"), hook, &manifest.records));
  TSQ_RETURN_IF_ERROR(index_->SaveTo(EpochFilePath(prefix, epoch, ".index"),
                                     hook, &manifest.index));

  std::ostringstream meta;
  meta.precision(17);
  const transform::FeatureLayout& layout = dataset_->layout();
  const rstar::RStarTree& tree = index_->tree();
  meta << "tsqmeta " << kMetaVersion << "\n";
  meta << "length " << dataset_->length() << "\n";
  meta << "layout " << layout.include_mean_std << " "
       << layout.num_coefficients << " " << layout.first_coefficient << " "
       << layout.use_symmetry << "\n";
  meta << "tree " << tree.root_page() << " " << tree.height() << " "
       << tree.size() << " " << tree.capacity() << " " << tree.min_fill()
       << "\n";
  meta << "store " << dataset_->records().current_page() << " "
       << dataset_->records().cursor() << "\n";
  meta << "sequences " << dataset_->size() << "\n";
  for (std::size_t i = 0; i < dataset_->size(); ++i) {
    const storage::RecordId record = dataset_->record_id(i);
    meta << record.page << " " << record.offset << " "
         << dataset_->removed(i) << " " << dataset_->normal(i).mean << " "
         << dataset_->normal(i).stddev << "\n";
  }
  {
    storage::AtomicFile out(EpochFilePath(prefix, epoch, ".meta"), hook);
    TSQ_RETURN_IF_ERROR(out.Open());
    TSQ_RETURN_IF_ERROR(out.Append(meta.str()));
    TSQ_RETURN_IF_ERROR(out.Commit());
    manifest.meta = out.digest();
  }

  // The manifest rename is the commit point of the whole checkpoint: before
  // it, LoadFrom sees the previous epoch intact; after it, the new trio
  // (each file already fsynced above).
  {
    storage::AtomicFile out(ManifestPath(prefix), hook);
    TSQ_RETURN_IF_ERROR(out.Open());
    TSQ_RETURN_IF_ERROR(out.Append(RenderManifest(manifest)));
    TSQ_RETURN_IF_ERROR(out.Commit());
  }
  checkpoint_epoch_.store(epoch, std::memory_order_relaxed);
  metrics.checkpoint_saves->Increment();

  // Garbage-collect superseded epochs. A crash in here costs only orphan
  // files, which the next SaveTo or LoadFrom sweeps up.
  if (hook != nullptr) {
    storage::WriteFaultDecision gc = hook->OnWrite("gc");
    if (gc.crash) {
      return gc.status.ok()
                 ? Status::IoError("injected crash at step 'gc' for " + prefix)
                 : gc.status;
    }
  }
  std::error_code ec;
  for (const std::filesystem::path& path :
       StaleCheckpointFiles(prefix, epoch)) {
    std::filesystem::remove(path, ec);  // best-effort
  }
  return Status::Ok();
}

Result<std::unique_ptr<SimilarityEngine>> SimilarityEngine::LoadFrom(
    const std::string& prefix) {
  const EngineMetrics& metrics = EngineMetrics::Get();
  const Result<Manifest> manifest = ReadManifest(prefix);
  if (!manifest.ok()) return manifest.status();
  const std::uint64_t epoch = manifest->epoch;

  // Verify every file of the trio against its manifest digest before
  // parsing *any* of them: a file from another epoch, a truncation or a
  // flipped bit anywhere is rejected here, so the loaders below only ever
  // see the exact bytes SaveTo committed.
  const std::pair<const char*, const storage::FileDigest*> files[] = {
      {".records", &manifest->records},
      {".index", &manifest->index},
      {".meta", &manifest->meta}};
  for (const auto& [suffix, want] : files) {
    const std::string path = EpochFilePath(prefix, epoch, suffix);
    const Result<storage::FileDigest> got = storage::DigestFile(path);
    if (!got.ok()) return got.status();
    if (*got != *want) {
      metrics.checkpoint_manifest_mismatches->Increment();
      return Status::Corruption("checkpoint file does not match manifest (" +
                                path + ")");
    }
  }

  // Debris of a torn save — stale epochs, `.tmp` orphans — means a crash
  // happened between commits; the committed checkpoint just verified, so
  // recovery is simply sweeping the debris.
  if (const auto stale = StaleCheckpointFiles(prefix, epoch); !stale.empty()) {
    metrics.checkpoint_crash_recoveries->Increment();
    std::error_code ec;
    for (const std::filesystem::path& path : stale) {
      std::filesystem::remove(path, ec);  // best-effort
    }
  }

  std::ifstream meta(EpochFilePath(prefix, epoch, ".meta"));
  if (!meta) {
    return Status::IoError("cannot open for reading: " +
                           EpochFilePath(prefix, epoch, ".meta"));
  }
  const auto bad = [&](const char* what) {
    return Status::Corruption(std::string("malformed meta file: ") + what);
  };
  std::string tag;
  int version = 0;
  if (!(meta >> tag >> version) || tag != "tsqmeta" ||
      version != kMetaVersion) {
    return bad("header");
  }
  std::size_t length = 0;
  if (!(meta >> tag >> length) || tag != "length") return bad("length");
  if (length < 2) return bad("length out of range");
  transform::FeatureLayout layout;
  if (!(meta >> tag >> layout.include_mean_std >> layout.num_coefficients >>
        layout.first_coefficient >> layout.use_symmetry) ||
      tag != "layout") {
    return bad("layout");
  }
  storage::PageId root = 0;
  std::size_t height = 0, size = 0;
  std::uint32_t capacity = 0, min_fill = 0;
  if (!(meta >> tag >> root >> height >> size >> capacity >> min_fill) ||
      tag != "tree") {
    return bad("tree");
  }
  // Every derived quantity below divides by or indexes with these, so they
  // are range-checked up front (a corrupted capacity of 0 used to reach the
  // min_fill/capacity division).
  if (capacity < 2 || min_fill == 0 || min_fill > capacity) {
    return bad("tree fill parameters out of range");
  }
  storage::PageId store_page = 0;
  std::uint32_t store_cursor = 0;
  if (!(meta >> tag >> store_page >> store_cursor) || tag != "store") {
    return bad("store");
  }
  std::size_t count = 0;
  if (!(meta >> tag >> count) || tag != "sequences") return bad("sequences");
  std::vector<Dataset::SequenceMeta> sequences(count);
  std::size_t live = 0;
  for (Dataset::SequenceMeta& s : sequences) {
    if (!(meta >> s.record.page >> s.record.offset >> s.removed >> s.mean >>
          s.stddev)) {
      return bad("sequence row");
    }
    if (!std::isfinite(s.mean) || !std::isfinite(s.stddev) ||
        s.stddev < 0.0) {
      return bad("sequence normal form out of range");
    }
    if (!s.removed) ++live;
  }
  // The index persists one entry per live sequence; a mismatch means meta
  // and index are from different states and queries would silently drop or
  // resurrect sequences.
  if (size != live) return bad("tree size disagrees with live sequences");

  std::unique_ptr<SimilarityEngine> engine(new SimilarityEngine());
  Result<std::unique_ptr<Dataset>> dataset = Dataset::LoadFrom(
      EpochFilePath(prefix, epoch, ".records"), layout, length,
      std::move(sequences), store_page, store_cursor);
  if (!dataset.ok()) return dataset.status();
  engine->dataset_ = std::move(*dataset);

  rstar::TreeOptions tree_options;
  tree_options.capacity_override = capacity;
  tree_options.min_fill_fraction =
      static_cast<double>(min_fill) / static_cast<double>(capacity);
  Result<std::unique_ptr<SequenceIndex>> index = SequenceIndex::LoadFrom(
      *engine->dataset_, tree_options,
      EpochFilePath(prefix, epoch, ".index"), root, height, size);
  if (!index.ok()) return index.status();
  engine->index_ = std::move(*index);
  engine->planner_ =
      std::make_unique<plan::Planner>(*engine->dataset_, *engine->index_);
  engine->checkpoint_epoch_.store(epoch, std::memory_order_relaxed);
  metrics.checkpoint_loads->Increment();
  return engine;
}

}  // namespace tsq::core
