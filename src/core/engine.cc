#include "core/engine.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/clock.h"
#include "core/cost_model.h"
#include "obs/metrics.h"
#include "plan/planner.h"

namespace tsq::core {

namespace {
constexpr int kMetaVersion = 1;

// Engine-level instruments, resolved once (registry pointers are stable for
// the life of the process). The write counters count *commits*: a
// compensated write (insert rolled back, remove that needed a rebuild)
// increments `rollbacks`; `removes` counts every remove that returned Ok,
// compensated or not, while a rolled-back insert counts only as a rollback
// (the caller got an error and no id).
struct EngineMetrics {
  obs::Counter* queries;
  obs::Counter* query_errors;
  obs::Histogram* query_nanos;
  obs::Counter* inserts;
  obs::Counter* removes;
  obs::Counter* rollbacks;

  static const EngineMetrics& Get() {
    static const EngineMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return EngineMetrics{registry.counter("engine.queries"),
                           registry.counter("engine.query_errors"),
                           registry.histogram("engine.query_nanos"),
                           registry.counter("engine.writes.inserts"),
                           registry.counter("engine.writes.removes"),
                           registry.counter("engine.writes.rollbacks")};
    }();
    return metrics;
  }
};
}  // namespace

SimilarityEngine::SimilarityEngine(std::vector<ts::Series> series,
                                   Options options) {
  dataset_ = std::make_unique<Dataset>(std::move(series), options.layout);
  index_ = std::make_unique<SequenceIndex>(*dataset_, options.tree);
  planner_ = std::make_unique<plan::Planner>(*dataset_, *index_);
}

SimilarityEngine::SimilarityEngine() = default;

SimilarityEngine::~SimilarityEngine() = default;

Result<std::size_t> SimilarityEngine::Insert(const ts::Series& series) {
  if (series.size() != dataset_->length()) {
    return Status::InvalidArgument("series length does not match dataset");
  }
  const EngineMetrics& metrics = EngineMetrics::Get();
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  const Result<std::size_t> appended = dataset_->Append(series);
  // A failed append is failure-atomic on its own: nothing was recorded, no
  // version bump, nothing to compensate.
  if (!appended.ok()) return appended.status();
  const std::size_t id = *appended;
  const Status inserted = index_->InsertEntry(id);
  if (!inserted.ok()) {
    // Compensate: tombstone the appended id so it can never match a query,
    // then rebuild the index — a tree insertion that failed mid-restructure
    // (forced reinsert removes entries before putting them back) can have
    // dropped *unrelated* live entries, which the tombstone alone cannot
    // repair. Rebuild only writes pages, so it succeeds even while a
    // read-fault hook is firing.
    const Status tombstoned = dataset_->MarkRemoved(id);
    TSQ_CHECK(tombstoned.ok()) << tombstoned.ToString();
    const Status rebuilt = index_->Rebuild();
    TSQ_CHECK(rebuilt.ok()) << rebuilt.ToString();
    planner_->BumpEpoch();     // the rebuilt tree prices differently
    snapshots_.BumpVersion();  // the tombstone is visible state
    metrics.rollbacks->Increment();
    return inserted;
  }
  planner_->BumpEpoch();  // cached plans priced the old tree
  snapshots_.BumpVersion();
  metrics.inserts->Increment();
  return id;
}

Status SimilarityEngine::Remove(std::size_t id) {
  const EngineMetrics& metrics = EngineMetrics::Get();
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  // The liveness check runs under the same lock as the commit below, so two
  // racing Remove(id) calls resolve deterministically: one Ok, one NotFound.
  if (id >= dataset_->size() || dataset_->removed(id)) {
    return Status::NotFound("no such live sequence");
  }
  // The tombstone is the commit point: every executor (and the test oracle)
  // filters removed ids, so from here on the sequence is gone from query
  // results regardless of what the index still says about it. MarkRemoved
  // cannot fail for an id the check above just validated.
  const Status tombstoned = dataset_->MarkRemoved(id);
  TSQ_CHECK(tombstoned.ok()) << tombstoned.ToString();
  const Status removed = index_->RemoveEntry(id);
  if (!removed.ok()) {
    // A clean failure (tree untouched) merely leaves a stale — filtered,
    // harmless — leaf entry; a failure during orphan reinsertion can have
    // dropped live entries. Rebuilding covers both without distinguishing.
    const Status rebuilt = index_->Rebuild();
    TSQ_CHECK(rebuilt.ok()) << rebuilt.ToString();
    metrics.rollbacks->Increment();
  }
  planner_->BumpEpoch();
  snapshots_.BumpVersion();
  metrics.removes->Increment();
  return Status::Ok();
}

const QueryStats& QueryResult::stats() const {
  return std::visit(
      [](const auto& result) -> const QueryStats& { return result.stats; },
      value);
}

const obs::QueryTrace& QueryResult::trace() const {
  return std::visit(
      [](const auto& result) -> const obs::QueryTrace& {
        return result.trace;
      },
      value);
}

Result<QueryResult> SimilarityEngine::Execute(const QuerySpec& spec,
                                              const ExecOptions& options) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  const std::uint64_t start = MonotonicNanos();
  metrics.queries->Increment();

  // Pin a read snapshot for the whole execution (planning included): writers
  // are held off until every pin drains, so the (dataset, index, plan-cache
  // epoch) triple cannot change under this query. The pinned version is
  // stamped into the result trace below.
  const SnapshotManager::ReadPin pin = snapshots_.PinRead();

  // Resolve kAuto into a concrete plan. A forced algorithm passes through
  // the planner too, but short-circuits into an unplanned decision there, so
  // forced execution is byte-identical to the pre-planner behaviour.
  Result<plan::Planned> planned = std::visit(
      [&](const auto& s) { return planner_->Plan(s, options.planner); }, spec);
  if (!planned.ok()) {
    metrics.query_errors->Increment();
    return planned.status();
  }
  const std::shared_ptr<const plan::PlanDecision> decision =
      planned->decision;
  ExecOptions resolved = options;
  resolved.planner.algorithm = decision->algorithm;
  const transform::Partition* partition_override =
      decision->partition.empty() ? nullptr : &decision->partition;

  QueryResult out;
  if (const auto* range = std::get_if<RangeQuerySpec>(&spec)) {
    Result<RangeQueryResult> result = RunRangeQuery(
        *dataset_, *index_, *range, resolved,
        options.collect_group_stats ? &out.group_stats : nullptr,
        partition_override);
    if (!result.ok()) {
      metrics.query_errors->Increment();
      return result.status();
    }
    out.value = std::move(*result);
  } else if (const auto* knn = std::get_if<KnnQuerySpec>(&spec)) {
    Result<KnnQueryResult> result = RunKnnQuery(*dataset_, *index_, *knn,
                                                resolved, partition_override);
    if (!result.ok()) {
      metrics.query_errors->Increment();
      return result.status();
    }
    out.value = std::move(*result);
  } else {
    Result<JoinQueryResult> result =
        RunJoinQuery(*dataset_, *index_, std::get<JoinQuerySpec>(spec),
                     resolved, partition_override);
    if (!result.ok()) {
      metrics.query_errors->Increment();
      return result.status();
    }
    out.value = std::move(*result);
  }

  obs::QueryTrace& trace = std::visit(
      [](auto& result) -> obs::QueryTrace& { return result.trace; },
      out.value);
  trace.snapshot_version = pin.version();
  if (decision->trace.planned) {
    trace.planner = decision->trace;
    trace.planner.cache_hit = planned->cache_hit;
    // Actual cost in the estimate's own currency: measured disk accesses
    // plus weighted comparisons (what the planner's Eq. 18-20 pricing
    // predicts, with real counters substituted for the analytic terms).
    const QueryStats& stats = out.stats();
    trace.planner.actual_cost =
        decision->constants.c_da * static_cast<double>(stats.disk_accesses()) +
        decision->constants.c_cmp * static_cast<double>(stats.comparisons);
  }

  metrics.query_nanos->Observe(MonotonicNanos() - start);
  return out;
}

void SimilarityEngine::ResetIoStats() {
  // Each reset goes through the same atomics the hot paths update, so a
  // concurrent reader never sees a torn value — but a query running *across*
  // the reset would be attributed partly to the old epoch and partly to the
  // new one, which is why the thread-safety contract excludes that
  // interleaving (see engine.h and docs/ARCHITECTURE.md).
  dataset_->ResetRecordIo();
  index_->ResetIndexIo();
  if (storage::BufferPool* pool = index_->buffer_pool()) {
    pool->ResetStats();
  }
}

void SimilarityEngine::SetSimulatedDiskLatency(std::uint64_t nanos) {
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  dataset_->set_io_delay_nanos(nanos);
  index_->set_io_delay_nanos(nanos);
  // C_cmp was measured against the old page-read latency.
  planner_->InvalidateCalibration();
}

void SimilarityEngine::EnableIndexBufferPool(std::size_t pages,
                                             std::size_t shards) {
  // The write lock waits out in-flight queries: swapping the pool under a
  // running traversal would hand it freed pages.
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  index_->EnableBufferPool(pages, shards);
}

void SimilarityEngine::SetReadFaultHook(storage::FaultHook* hook) {
  SnapshotManager::WriteLock write = snapshots_.LockWrite();
  dataset_->SetReadFaultHook(hook);
  index_->SetReadFaultHook(hook);
}

Status SimilarityEngine::SaveTo(const std::string& prefix) const {
  // Pin a snapshot so the three files describe one committed state even
  // while writers are active.
  const SnapshotManager::ReadPin pin = snapshots_.PinRead();
  TSQ_RETURN_IF_ERROR(dataset_->SaveRecordsTo(prefix + ".records"));
  TSQ_RETURN_IF_ERROR(index_->SaveTo(prefix + ".index"));

  std::ofstream meta(prefix + ".meta", std::ios::trunc);
  if (!meta) return Status::IoError("cannot open for writing: " + prefix);
  meta.precision(17);
  const transform::FeatureLayout& layout = dataset_->layout();
  const rstar::RStarTree& tree = index_->tree();
  meta << "tsqmeta " << kMetaVersion << "\n";
  meta << "length " << dataset_->length() << "\n";
  meta << "layout " << layout.include_mean_std << " "
       << layout.num_coefficients << " " << layout.first_coefficient << " "
       << layout.use_symmetry << "\n";
  meta << "tree " << tree.root_page() << " " << tree.height() << " "
       << tree.size() << " " << tree.capacity() << " " << tree.min_fill()
       << "\n";
  meta << "store " << dataset_->records().current_page() << " "
       << dataset_->records().cursor() << "\n";
  meta << "sequences " << dataset_->size() << "\n";
  for (std::size_t i = 0; i < dataset_->size(); ++i) {
    const storage::RecordId record = dataset_->record_id(i);
    meta << record.page << " " << record.offset << " "
         << dataset_->removed(i) << " " << dataset_->normal(i).mean << " "
         << dataset_->normal(i).stddev << "\n";
  }
  meta.flush();
  if (!meta) return Status::IoError("write failed: " + prefix + ".meta");
  return Status::Ok();
}

Result<std::unique_ptr<SimilarityEngine>> SimilarityEngine::LoadFrom(
    const std::string& prefix) {
  std::ifstream meta(prefix + ".meta");
  if (!meta) {
    return Status::IoError("cannot open for reading: " + prefix + ".meta");
  }
  const auto bad = [&](const char* what) {
    return Status::Corruption(std::string("malformed meta file: ") + what);
  };
  std::string tag;
  int version = 0;
  if (!(meta >> tag >> version) || tag != "tsqmeta" ||
      version != kMetaVersion) {
    return bad("header");
  }
  std::size_t length = 0;
  if (!(meta >> tag >> length) || tag != "length") return bad("length");
  transform::FeatureLayout layout;
  if (!(meta >> tag >> layout.include_mean_std >> layout.num_coefficients >>
        layout.first_coefficient >> layout.use_symmetry) ||
      tag != "layout") {
    return bad("layout");
  }
  storage::PageId root = 0;
  std::size_t height = 0, size = 0;
  std::uint32_t capacity = 0, min_fill = 0;
  if (!(meta >> tag >> root >> height >> size >> capacity >> min_fill) ||
      tag != "tree") {
    return bad("tree");
  }
  storage::PageId store_page = 0;
  std::uint32_t store_cursor = 0;
  if (!(meta >> tag >> store_page >> store_cursor) || tag != "store") {
    return bad("store");
  }
  std::size_t count = 0;
  if (!(meta >> tag >> count) || tag != "sequences") return bad("sequences");
  std::vector<Dataset::SequenceMeta> sequences(count);
  for (Dataset::SequenceMeta& s : sequences) {
    if (!(meta >> s.record.page >> s.record.offset >> s.removed >> s.mean >>
          s.stddev)) {
      return bad("sequence row");
    }
  }

  std::unique_ptr<SimilarityEngine> engine(new SimilarityEngine());
  Result<std::unique_ptr<Dataset>> dataset =
      Dataset::LoadFrom(prefix + ".records", layout, length,
                        std::move(sequences), store_page, store_cursor);
  if (!dataset.ok()) return dataset.status();
  engine->dataset_ = std::move(*dataset);

  rstar::TreeOptions tree_options;
  tree_options.capacity_override = capacity;
  tree_options.min_fill_fraction =
      static_cast<double>(min_fill) / static_cast<double>(capacity);
  Result<std::unique_ptr<SequenceIndex>> index = SequenceIndex::LoadFrom(
      *engine->dataset_, tree_options, prefix + ".index", root, height, size);
  if (!index.ok()) return index.status();
  engine->index_ = std::move(*index);
  engine->planner_ =
      std::make_unique<plan::Planner>(*engine->dataset_, *engine->index_);
  return engine;
}

}  // namespace tsq::core
