#include "core/knn_query.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/clock.h"
#include "core/feature.h"
#include "core/polar_bounds.h"
#include "exec/parallel.h"
#include "obs/trace.h"
#include "transform/transform_mbr.h"
#include "ts/normal_form.h"

namespace tsq::core {

namespace {

// Sequence ids per sequential-scan task; a constant, so the decomposition
// (and hence the merged output) never depends on num_threads.
constexpr std::size_t kScanChunk = 256;

// Distance-ascending order with series-id tie-break. Unlike a raw
// `a.distance < b.distance` on doubles, this is a strict weak ordering even
// when NaN distances slip in (a NaN compares last, ties within NaN broken by
// id) — sorting with the naive comparator is undefined behaviour the moment
// one distance is NaN.
bool KnnMatchOrder(const KnnMatch& a, const KnnMatch& b) {
  const bool a_nan = std::isnan(a.distance);
  const bool b_nan = std::isnan(b.distance);
  if (a_nan != b_nan) return b_nan;  // every number sorts before NaN
  if (!a_nan && a.distance != b.distance) return a.distance < b.distance;
  return a.series_id < b.series_id;
}

Status ValidateSpec(const Dataset& dataset, const KnnQuerySpec& spec) {
  if (spec.query.size() != dataset.length()) {
    return Status::InvalidArgument("query length does not match dataset");
  }
  // A non-finite query value makes every distance NaN (a "nearest" order no
  // longer exists), so reject it up front rather than sort garbage.
  for (const double value : spec.query) {
    if (!std::isfinite(value)) {
      return Status::InvalidArgument("query contains non-finite values");
    }
  }
  if (spec.transforms.empty()) {
    return Status::InvalidArgument("no transformations in query");
  }
  for (const transform::SpectralTransform& t : spec.transforms) {
    if (t.length() != dataset.length()) {
      return Status::InvalidArgument(
          "transformation length does not match dataset: " + t.label());
    }
  }
  return Status::Ok();
}

// Best transformation for one candidate: (distance^2, transform index).
// Each evaluation abandons early once its partial sum exceeds both the
// running best and `bound` (the caller's current k-th-best distance). The
// result is exact — identical to the unbounded evaluation — whenever it is
// <= bound; a returned value > bound may be an abandoned partial sum, which
// is safe because the caller discards such candidates entirely.
std::pair<double, std::size_t> BestTransform(
    const KnnQuerySpec& spec, std::span<const dft::Complex> candidate,
    std::span<const dft::Complex> query, QueryStats* stats,
    double bound = std::numeric_limits<double>::infinity()) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_t = 0;
  for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
    if (stats != nullptr) ++stats->comparisons;
    const double limit = std::min(best, bound);
    const double d2 =
        spec.target == TransformTarget::kBoth
            ? spec.transforms[t].TransformedSquaredDistanceWithin(candidate,
                                                                  query, limit)
            : spec.transforms[t].TransformedToPlainSquaredDistanceWithin(
                  candidate, query, limit);
    if (d2 < best) {
      best = d2;
      best_t = t;
    }
  }
  return {best, best_t};
}

}  // namespace

std::vector<KnnMatch> BruteForceKnnQuery(const Dataset& dataset,
                                         const KnnQuerySpec& spec) {
  const ts::NormalForm query_normal = ts::Normalize(spec.query);
  std::vector<dft::Complex> query_spectrum =
      dataset.plan().Forward(query_normal.values);
  if (spec.query_transform.has_value()) {
    query_spectrum = spec.query_transform->ApplyToSpectrum(query_spectrum);
  }
  std::vector<KnnMatch> all;
  all.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.removed(i)) continue;
    const auto [d2, t] =
        BestTransform(spec, dataset.spectrum(i), query_spectrum, nullptr);
    all.push_back(KnnMatch{i, t, std::sqrt(d2)});
  }
  std::sort(all.begin(), all.end(), KnnMatchOrder);
  if (all.size() > spec.k) all.resize(spec.k);
  return all;
}

Result<KnnQueryResult> RunKnnQuery(const Dataset& dataset,
                                   const SequenceIndex& index,
                                   const KnnQuerySpec& spec,
                                   const ExecOptions& options,
                                   const transform::Partition*
                                       partition_override) {
  const std::uint64_t query_start = MonotonicNanos();
  TSQ_RETURN_IF_ERROR(RejectUnresolvedAuto(options));
  TSQ_RETURN_IF_ERROR(ValidateSpec(dataset, spec));
  const transform::FeatureLayout& layout = dataset.layout();
  const ts::NormalForm query_normal = ts::Normalize(spec.query);
  std::vector<dft::Complex> query_spectrum =
      dataset.plan().Forward(query_normal.values);
  if (spec.query_transform.has_value()) {
    query_spectrum = spec.query_transform->ApplyToSpectrum(query_spectrum);
  }

  KnnQueryResult result;
  QueryStats& stats = result.stats;
  obs::QueryTrace& trace = result.trace;
  trace.algorithm = AlgorithmName(options.planner.algorithm);
  trace.num_threads = options.num_threads;
  trace.at(obs::Phase::kPlan)
      .AddTask(MonotonicNanos() - query_start, spec.transforms.size());

  if (options.planner.algorithm == Algorithm::kSequentialScan) {
    // One task per fixed-size slice; each evaluates its sequences exactly,
    // then the merged list is sorted and truncated — the same computation
    // the serial scan performs, in the same tie-break order.
    struct ScanPart {
      std::vector<KnnMatch> matches;
      QueryStats stats;
      std::uint64_t record_pages = 0;
      std::uint64_t fetch_nanos = 0;
      std::uint64_t verify_nanos = 0;
    };
    const std::size_t slices = exec::ChunkCount(dataset.size(), kScanChunk);
    std::vector<ScanPart> parts(slices);
    TSQ_RETURN_IF_ERROR(exec::ParallelFor(
        options.num_threads, slices, [&](std::size_t task) -> Status {
          const exec::ChunkRange slice =
              exec::ChunkBounds(dataset.size(), kScanChunk, task);
          ScanPart& part = parts[task];
          // Task-local k best exact distances; the heap top bounds the early
          // abandon. A candidate whose evaluation exceeds it has a true
          // distance strictly above this task's k-th best, hence strictly
          // above the global k-th best, so dropping it cannot change the
          // merged top k (strict ">" keeps distance ties, which are broken
          // by series id, intact). The slice decomposition is fixed by
          // kScanChunk, so results stay independent of num_threads.
          std::priority_queue<double> best_k;
          for (std::size_t i = slice.first; i < slice.last; ++i) {
            if (dataset.removed(i)) continue;
            const std::uint64_t fetch_start = MonotonicNanos();
            Result<std::vector<dft::Complex>> spectrum =
                dataset.FetchSpectrum(i, &part.record_pages);
            if (!spectrum.ok()) return spectrum.status();
            ++part.stats.candidates;
            const std::uint64_t verify_start = MonotonicNanos();
            const double bound =
                spec.k > 0 && best_k.size() == spec.k
                    ? best_k.top()
                    : std::numeric_limits<double>::infinity();
            const auto [d2, t] = BestTransform(spec, *spectrum, query_spectrum,
                                               &part.stats, bound);
            if (!(d2 > bound)) {  // d2 <= bound is always exact
              part.matches.push_back(KnnMatch{i, t, std::sqrt(d2)});
              if (spec.k > 0) {
                if (best_k.size() < spec.k) {
                  best_k.push(d2);
                } else if (d2 < best_k.top()) {
                  best_k.pop();
                  best_k.push(d2);
                }
              }
            }
            part.fetch_nanos += verify_start - fetch_start;
            part.verify_nanos += MonotonicNanos() - verify_start;
          }
          return Status::Ok();
        }));
    const std::uint64_t merge_start = MonotonicNanos();
    std::vector<KnnMatch> all;
    for (ScanPart& part : parts) {
      all.insert(all.end(), part.matches.begin(), part.matches.end());
      stats += part.stats;
      stats.record_pages_read += part.record_pages;
      trace.at(obs::Phase::kCandidateFetch)
          .AddTask(part.fetch_nanos, part.stats.candidates);
      trace.at(obs::Phase::kVerification)
          .AddTask(part.verify_nanos, part.stats.comparisons);
    }
    std::sort(all.begin(), all.end(), KnnMatchOrder);
    if (all.size() > spec.k) all.resize(spec.k);
    result.matches = std::move(all);
    stats.output_size = result.matches.size();
    trace.at(obs::Phase::kMerge)
        .AddTask(MonotonicNanos() - merge_start, result.matches.size());
    trace.total_nanos = MonotonicNanos() - query_start;
    return result;
  }

  // Indexed path (ST-index = singleton rectangles, MT-index = grouped).
  const rstar::Point query_features =
      ExtractFeatures(query_normal, query_spectrum, layout);

  transform::Partition partition;
  if (options.planner.algorithm == Algorithm::kStIndex) {
    partition = transform::PartitionSingletons(spec.transforms.size());
  } else if (partition_override != nullptr && !partition_override->empty()) {
    partition = *partition_override;
  } else if (spec.partition.empty()) {
    partition = transform::PartitionAll(spec.transforms.size());
  } else {
    partition = spec.partition;
  }

  // Per group: the transformation MBR and the rect bounding the transformed
  // query's retained features.
  struct GroupBound {
    transform::TransformMbr mbr;
    rstar::Rect query_rect;
  };
  std::vector<GroupBound> groups;
  for (const std::vector<std::size_t>& group : partition) {
    std::vector<transform::FeatureTransform> fts;
    fts.reserve(group.size());
    for (const std::size_t t : group) {
      fts.push_back(spec.transforms[t].ToFeatureTransform(layout));
    }
    // Query region with zero expansion: the MBR of the transformed query
    // feature points (kBoth), or the plain query point (kDataOnly).
    const std::vector<transform::FeatureTransform> identity = {
        transform::FeatureTransform::Identity(layout.dimensions())};
    groups.push_back(GroupBound{
        transform::TransformMbr(fts, layout),
        BuildQueryRegion(query_features,
                         spec.target == TransformTarget::kBoth
                             ? std::span<const transform::FeatureTransform>(fts)
                             : std::span<const transform::FeatureTransform>(
                                   identity),
                         /*epsilon=*/0.0, layout)});
  }

  const auto lower_bound = [&](const rstar::Rect& rect) {
    double best = std::numeric_limits<double>::infinity();
    for (const GroupBound& g : groups) {
      best = std::min(best, RectPairSquaredDistanceLowerBound(
                                g.mbr.Apply(rect), g.query_rect, layout));
    }
    return best;
  };

  // Best-first search (Hjaltason-Samet): tree pages and unrefined leaf
  // entries enter the queue with their lower bound; an entry is refined
  // (record fetched, exact distance computed) only when it surfaces, so
  // entries that can never be among the k best are never fetched. When an
  // exact item surfaces, nothing unexplored can beat it.
  enum class Kind { kPage, kEntry, kExact };
  struct Item {
    double key;  // squared distance (bound or exact)
    Kind kind;
    std::uint64_t id;  // page id or series id
    std::size_t transform_index;
    bool operator>(const Item& other) const { return key > other.key; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  if (index.tree().size() > 0) {
    queue.push(Item{0.0, Kind::kPage, index.tree().root_page(), 0});
  }

  rstar::SearchStats search_stats;
  // The k best exact distances refined so far; the heap top bounds the early
  // abandon inside BestTransform. When a refinement exceeds it, k entries
  // with strictly smaller exact keys are already in the result or the queue,
  // every one of which surfaces first — so the abandoned entry can never be
  // popped before the search terminates and is dropped outright.
  std::priority_queue<double> refined_k;
  // The best-first loop is serial, so phase times are accumulated locally
  // and reported as one task each.
  std::uint64_t traversal_nanos = 0;
  std::uint64_t fetch_nanos = 0;
  std::uint64_t verify_nanos = 0;
  std::uint64_t merge_nanos = 0;
  while (!queue.empty() && result.matches.size() < spec.k) {
    const Item item = queue.top();
    queue.pop();
    switch (item.kind) {
      case Kind::kExact: {
        const std::uint64_t start = MonotonicNanos();
        result.matches.push_back(
            KnnMatch{item.id, item.transform_index, std::sqrt(item.key)});
        merge_nanos += MonotonicNanos() - start;
        break;
      }
      case Kind::kEntry: {
        const std::uint64_t fetch_start = MonotonicNanos();
        Result<std::vector<dft::Complex>> spectrum =
            dataset.FetchSpectrum(item.id, &stats.record_pages_read);
        if (!spectrum.ok()) return spectrum.status();
        ++stats.candidates;
        const std::uint64_t verify_start = MonotonicNanos();
        const double bound =
            spec.k > 0 && refined_k.size() == spec.k
                ? refined_k.top()
                : std::numeric_limits<double>::infinity();
        const auto [d2, t] =
            BestTransform(spec, *spectrum, query_spectrum, &stats, bound);
        if (!(d2 > bound)) {  // d2 <= bound is always exact
          queue.push(Item{d2, Kind::kExact, item.id, t});
          if (spec.k > 0) {
            if (refined_k.size() < spec.k) {
              refined_k.push(d2);
            } else if (d2 < refined_k.top()) {
              refined_k.pop();
              refined_k.push(d2);
            }
          }
        }
        fetch_nanos += verify_start - fetch_start;
        verify_nanos += MonotonicNanos() - verify_start;
        break;
      }
      case Kind::kPage: {
        const std::uint64_t start = MonotonicNanos();
        rstar::RStarTree::NodeView view;
        TSQ_RETURN_IF_ERROR(
            index.tree().ReadNodeView(item.id, &view, &search_stats));
        for (const rstar::Entry& entry : view.entries) {
          queue.push(Item{lower_bound(entry.rect),
                          view.is_leaf ? Kind::kEntry : Kind::kPage, entry.id,
                          0});
        }
        traversal_nanos += MonotonicNanos() - start;
        break;
      }
    }
  }
  stats.index_nodes_accessed = search_stats.nodes_accessed;
  stats.index_leaves_accessed = search_stats.leaf_nodes_accessed;
  stats.traversals = 1;
  stats.output_size = result.matches.size();
  trace.at(obs::Phase::kIndexTraversal)
      .AddTask(traversal_nanos, stats.index_nodes_accessed);
  trace.at(obs::Phase::kCandidateFetch).AddTask(fetch_nanos, stats.candidates);
  trace.at(obs::Phase::kVerification).AddTask(verify_nanos, stats.comparisons);
  trace.at(obs::Phase::kMerge).AddTask(merge_nanos, result.matches.size());
  trace.total_nanos = MonotonicNanos() - query_start;
  return result;
}

Result<KnnQueryResult> RunKnnQuery(const Dataset& dataset,
                                   const SequenceIndex& index,
                                   const KnnQuerySpec& spec,
                                   Algorithm algorithm) {
  ExecOptions options;
  options.planner.algorithm = algorithm;
  options.num_threads = 1;
  return RunKnnQuery(dataset, index, spec, options);
}

}  // namespace tsq::core
