#include "core/knn_query.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "core/feature.h"
#include "core/polar_bounds.h"
#include "exec/parallel.h"
#include "transform/transform_mbr.h"
#include "ts/normal_form.h"

namespace tsq::core {

namespace {

// Sequence ids per sequential-scan task; a constant, so the decomposition
// (and hence the merged output) never depends on num_threads.
constexpr std::size_t kScanChunk = 256;

Status ValidateSpec(const Dataset& dataset, const KnnQuerySpec& spec) {
  if (spec.query.size() != dataset.length()) {
    return Status::InvalidArgument("query length does not match dataset");
  }
  if (spec.transforms.empty()) {
    return Status::InvalidArgument("no transformations in query");
  }
  for (const transform::SpectralTransform& t : spec.transforms) {
    if (t.length() != dataset.length()) {
      return Status::InvalidArgument(
          "transformation length does not match dataset: " + t.label());
    }
  }
  return Status::Ok();
}

// Exact best transformation for one candidate: (distance^2, transform index).
std::pair<double, std::size_t> BestTransform(
    const KnnQuerySpec& spec, std::span<const dft::Complex> candidate,
    std::span<const dft::Complex> query, QueryStats* stats) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_t = 0;
  for (std::size_t t = 0; t < spec.transforms.size(); ++t) {
    if (stats != nullptr) ++stats->comparisons;
    const double d2 =
        spec.target == TransformTarget::kBoth
            ? spec.transforms[t].TransformedSquaredDistance(candidate, query)
            : spec.transforms[t].TransformedToPlainSquaredDistance(candidate,
                                                                   query);
    if (d2 < best) {
      best = d2;
      best_t = t;
    }
  }
  return {best, best_t};
}

}  // namespace

std::vector<KnnMatch> BruteForceKnnQuery(const Dataset& dataset,
                                         const KnnQuerySpec& spec) {
  const ts::NormalForm query_normal = ts::Normalize(spec.query);
  std::vector<dft::Complex> query_spectrum =
      dataset.plan().Forward(query_normal.values);
  if (spec.query_transform.has_value()) {
    query_spectrum = spec.query_transform->ApplyToSpectrum(query_spectrum);
  }
  std::vector<KnnMatch> all;
  all.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.removed(i)) continue;
    const auto [d2, t] =
        BestTransform(spec, dataset.spectrum(i), query_spectrum, nullptr);
    all.push_back(KnnMatch{i, t, std::sqrt(d2)});
  }
  std::sort(all.begin(), all.end(), [](const KnnMatch& a, const KnnMatch& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.series_id < b.series_id;
  });
  if (all.size() > spec.k) all.resize(spec.k);
  return all;
}

Result<KnnQueryResult> RunKnnQuery(const Dataset& dataset,
                                   const SequenceIndex& index,
                                   const KnnQuerySpec& spec,
                                   const ExecOptions& options) {
  TSQ_RETURN_IF_ERROR(ValidateSpec(dataset, spec));
  const transform::FeatureLayout& layout = dataset.layout();
  const ts::NormalForm query_normal = ts::Normalize(spec.query);
  std::vector<dft::Complex> query_spectrum =
      dataset.plan().Forward(query_normal.values);
  if (spec.query_transform.has_value()) {
    query_spectrum = spec.query_transform->ApplyToSpectrum(query_spectrum);
  }

  KnnQueryResult result;
  QueryStats& stats = result.stats;

  if (options.algorithm == Algorithm::kSequentialScan) {
    // One task per fixed-size slice; each evaluates its sequences exactly,
    // then the merged list is sorted and truncated — the same computation
    // the serial scan performs, in the same tie-break order.
    struct ScanPart {
      std::vector<KnnMatch> matches;
      QueryStats stats;
    };
    const std::size_t slices = exec::ChunkCount(dataset.size(), kScanChunk);
    std::vector<ScanPart> parts(slices);
    TSQ_RETURN_IF_ERROR(exec::ParallelFor(
        options.num_threads, slices, [&](std::size_t task) -> Status {
          const exec::ChunkRange slice =
              exec::ChunkBounds(dataset.size(), kScanChunk, task);
          ScanPart& part = parts[task];
          for (std::size_t i = slice.first; i < slice.last; ++i) {
            if (dataset.removed(i)) continue;
            Result<std::vector<dft::Complex>> spectrum =
                dataset.FetchSpectrum(i);
            if (!spectrum.ok()) return spectrum.status();
            const auto [d2, t] =
                BestTransform(spec, *spectrum, query_spectrum, &part.stats);
            part.matches.push_back(KnnMatch{i, t, std::sqrt(d2)});
          }
          return Status::Ok();
        }));
    std::vector<KnnMatch> all;
    for (ScanPart& part : parts) {
      all.insert(all.end(), part.matches.begin(), part.matches.end());
      stats += part.stats;
    }
    std::sort(all.begin(), all.end(),
              [](const KnnMatch& a, const KnnMatch& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.series_id < b.series_id;
              });
    if (all.size() > spec.k) all.resize(spec.k);
    result.matches = std::move(all);
    stats.record_pages_read = dataset.record_pages();
    stats.candidates = dataset.active_size();
    stats.output_size = result.matches.size();
    return result;
  }

  // Indexed path (ST-index = singleton rectangles, MT-index = grouped).
  const rstar::Point query_features =
      ExtractFeatures(query_normal, query_spectrum, layout);

  transform::Partition partition;
  if (options.algorithm == Algorithm::kStIndex) {
    partition = transform::PartitionSingletons(spec.transforms.size());
  } else if (spec.partition.empty()) {
    partition = transform::PartitionAll(spec.transforms.size());
  } else {
    partition = spec.partition;
  }

  // Per group: the transformation MBR and the rect bounding the transformed
  // query's retained features.
  struct GroupBound {
    transform::TransformMbr mbr;
    rstar::Rect query_rect;
  };
  std::vector<GroupBound> groups;
  for (const std::vector<std::size_t>& group : partition) {
    std::vector<transform::FeatureTransform> fts;
    fts.reserve(group.size());
    for (const std::size_t t : group) {
      fts.push_back(spec.transforms[t].ToFeatureTransform(layout));
    }
    // Query region with zero expansion: the MBR of the transformed query
    // feature points (kBoth), or the plain query point (kDataOnly).
    const std::vector<transform::FeatureTransform> identity = {
        transform::FeatureTransform::Identity(layout.dimensions())};
    groups.push_back(GroupBound{
        transform::TransformMbr(fts, layout),
        BuildQueryRegion(query_features,
                         spec.target == TransformTarget::kBoth
                             ? std::span<const transform::FeatureTransform>(fts)
                             : std::span<const transform::FeatureTransform>(
                                   identity),
                         /*epsilon=*/0.0, layout)});
  }

  const auto lower_bound = [&](const rstar::Rect& rect) {
    double best = std::numeric_limits<double>::infinity();
    for (const GroupBound& g : groups) {
      best = std::min(best, RectPairSquaredDistanceLowerBound(
                                g.mbr.Apply(rect), g.query_rect, layout));
    }
    return best;
  };

  // Best-first search (Hjaltason-Samet): tree pages and unrefined leaf
  // entries enter the queue with their lower bound; an entry is refined
  // (record fetched, exact distance computed) only when it surfaces, so
  // entries that can never be among the k best are never fetched. When an
  // exact item surfaces, nothing unexplored can beat it.
  enum class Kind { kPage, kEntry, kExact };
  struct Item {
    double key;  // squared distance (bound or exact)
    Kind kind;
    std::uint64_t id;  // page id or series id
    std::size_t transform_index;
    bool operator>(const Item& other) const { return key > other.key; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  if (index.tree().size() > 0) {
    queue.push(Item{0.0, Kind::kPage, index.tree().root_page(), 0});
  }

  rstar::SearchStats search_stats;
  while (!queue.empty() && result.matches.size() < spec.k) {
    const Item item = queue.top();
    queue.pop();
    switch (item.kind) {
      case Kind::kExact:
        result.matches.push_back(
            KnnMatch{item.id, item.transform_index, std::sqrt(item.key)});
        break;
      case Kind::kEntry: {
        Result<std::vector<dft::Complex>> spectrum =
            dataset.FetchSpectrum(item.id, &stats.record_pages_read);
        if (!spectrum.ok()) return spectrum.status();
        ++stats.candidates;
        const auto [d2, t] =
            BestTransform(spec, *spectrum, query_spectrum, &stats);
        queue.push(Item{d2, Kind::kExact, item.id, t});
        break;
      }
      case Kind::kPage: {
        rstar::RStarTree::NodeView view;
        TSQ_RETURN_IF_ERROR(
            index.tree().ReadNodeView(item.id, &view, &search_stats));
        for (const rstar::Entry& entry : view.entries) {
          queue.push(Item{lower_bound(entry.rect),
                          view.is_leaf ? Kind::kEntry : Kind::kPage, entry.id,
                          0});
        }
        break;
      }
    }
  }
  stats.index_nodes_accessed = search_stats.nodes_accessed;
  stats.index_leaves_accessed = search_stats.leaf_nodes_accessed;
  stats.traversals = 1;
  stats.output_size = result.matches.size();
  return result;
}

Result<KnnQueryResult> RunKnnQuery(const Dataset& dataset,
                                   const SequenceIndex& index,
                                   const KnnQuerySpec& spec,
                                   Algorithm algorithm) {
  ExecOptions options;
  options.algorithm = algorithm;
  options.num_threads = 1;
  return RunKnnQuery(dataset, index, spec, options);
}

}  // namespace tsq::core
