#ifndef TSQ_CORE_JOIN_QUERY_H_
#define TSQ_CORE_JOIN_QUERY_H_

#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/index.h"
#include "core/query.h"

namespace tsq::core {

/// The join predicate flavour. The paper's Query 2 uses correlation:
/// "find every pair s1, s2 and t in T with rho(t(s1), t(s2)) >= 0.99".
enum class JoinMode {
  /// D(t(s1), t(s2)) < epsilon — exactly filterable; the indexed join is
  /// guaranteed complete (same argument as Lemma 1).
  kDistance,
  /// rho(t(s1), t(s2)) >= min_correlation — the paper's Query 2. The index
  /// filter prunes with the Eq. 9 distance threshold scaled by `slack`;
  /// because transformed sequences are no longer unit-variance, a pair whose
  /// transformed variances differ wildly can in principle be missed (the
  /// paper's filter shares this property). Every reported pair is exactly
  /// verified. Increase `slack` to trade disk accesses for recall.
  kCorrelation,
};

/// Self-join specification over the dataset's sequences.
struct JoinQuerySpec {
  JoinMode mode = JoinMode::kCorrelation;
  double min_correlation = 0.99;  // kCorrelation
  double epsilon = 0.0;           // kDistance
  double slack = 1.0;             // kCorrelation index-filter widening
  std::vector<transform::SpectralTransform> transforms;
  transform::Partition partition;  // MT-index grouping; empty = one MBR
};

/// One qualifying pair; a < b always, and `value` is the correlation
/// (kCorrelation) or the distance (kDistance).
struct JoinMatch {
  std::size_t a = 0;
  std::size_t b = 0;
  std::size_t transform_index = 0;
  double value = 0.0;

  bool operator==(const JoinMatch&) const = default;
};

struct JoinQueryResult {
  std::vector<JoinMatch> matches;
  QueryStats stats;
  obs::QueryTrace trace;
};

/// Runs the self-join with the chosen algorithm. kSequentialScan evaluates
/// all pairs; kStIndex/kMtIndex run an R-tree spatial join per
/// transformation (rectangle), applying the rectangle to both node
/// rectangles before the overlap test (Section 4.1, spatial-join paragraph).
///
/// Parallelism (`options.num_threads`): the sequential scan fans out one
/// task per fixed-size slice of outer sequence ids (after a parallel
/// prefetch of all record spectra); the indexed join runs one spatial-join
/// task per transformation rectangle, then verifies candidate pairs in
/// fixed-size chunks with per-chunk fetch caches. Matches and summed
/// QueryStats are identical for every thread count.
/// `partition_override` (planner-chosen MBR grouping) behaves as in
/// RunRangeQuery; `options.planner.algorithm` must be concrete.
Result<JoinQueryResult> RunJoinQuery(const Dataset& dataset,
                                     const SequenceIndex& index,
                                     const JoinQuerySpec& spec,
                                     const ExecOptions& options,
                                     const transform::Partition*
                                         partition_override = nullptr);

/// Legacy entry point: algorithm only, single-threaded.
Result<JoinQueryResult> RunJoinQuery(const Dataset& dataset,
                                     const SequenceIndex& index,
                                     const JoinQuerySpec& spec,
                                     Algorithm algorithm);

/// Reference evaluation over in-memory spectra (ground truth for tests).
std::vector<JoinMatch> BruteForceJoinQuery(const Dataset& dataset,
                                           const JoinQuerySpec& spec);

/// Cross-correlation of the transformed versions of two normal-form
/// spectra, computed in the frequency domain in O(n):
/// both transformed sequences have zero mean (normal forms have X_0 = 0 and
/// the multiplier leaves it zero), so
///   rho = (n-1) * sum_f Re(U_f conj(V_f)) / (n * sigma_u * sigma_v),
/// with (n-1) sigma^2 = sum_f |U_f|^2. Returns 0 when either transformed
/// sequence has zero variance.
double TransformedCorrelation(const transform::SpectralTransform& t,
                              std::span<const dft::Complex> x,
                              std::span<const dft::Complex> y);

void SortJoinMatches(std::vector<JoinMatch>* matches);

}  // namespace tsq::core

#endif  // TSQ_CORE_JOIN_QUERY_H_
