#include "core/feature.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dft/spectrum.h"
#include "transform/transform_mbr.h"

namespace tsq::core {

namespace {
constexpr double kPi = std::numbers::pi;
// Stand-in for "unbounded" on dimensions the query does not constrain; large
// enough to cover any data, small enough to keep rect arithmetic finite.
constexpr double kUnboundedExtent = 1e300;
}  // namespace

rstar::Point ExtractFeatures(const ts::NormalForm& normal,
                             std::span<const dft::Complex> spectrum,
                             const transform::FeatureLayout& layout) {
  TSQ_CHECK_EQ(spectrum.size(), normal.values.size());
  rstar::Point features(layout.dimensions(), 0.0);
  if (layout.include_mean_std) {
    features[layout.mean_dimension()] = normal.mean;
    features[layout.stddev_dimension()] = normal.stddev;
  }
  for (std::size_t i = 0; i < layout.num_coefficients; ++i) {
    const std::size_t f = layout.coefficient(i);
    TSQ_CHECK_LT(f, spectrum.size());
    const dft::Polar polar = dft::ToPolar(spectrum[f]);
    features[layout.magnitude_dimension(i)] = polar.magnitude;
    features[layout.angle_dimension(i)] = polar.angle;
  }
  return features;
}

double SafeAngleHalfWidth(double epsilon_f, double min_query_magnitude) {
  TSQ_CHECK_GE(epsilon_f, 0.0);
  const double m = min_query_magnitude;
  if (m <= epsilon_f) return kPi;
  const double denom = 2.0 * std::sqrt((m - epsilon_f) * m);
  const double ratio = std::min(1.0, epsilon_f / denom);
  return 2.0 * std::asin(ratio);
}

rstar::Rect BuildQueryRegion(
    const rstar::Point& query_features,
    std::span<const transform::FeatureTransform> group, double epsilon,
    const transform::FeatureLayout& layout) {
  TSQ_CHECK(!group.empty());
  TSQ_CHECK_EQ(query_features.size(), layout.dimensions());
  const std::size_t dims = layout.dimensions();
  std::vector<double> low(dims), high(dims);

  if (layout.include_mean_std) {
    low[layout.mean_dimension()] = -kUnboundedExtent;
    high[layout.mean_dimension()] = kUnboundedExtent;
    low[layout.stddev_dimension()] = -kUnboundedExtent;
    high[layout.stddev_dimension()] = kUnboundedExtent;
  }

  const double eps_f = epsilon / std::sqrt(layout.coefficient_weight());
  std::vector<double> mags(group.size());
  std::vector<double> angles(group.size());
  for (std::size_t i = 0; i < layout.num_coefficients; ++i) {
    const std::size_t md = layout.magnitude_dimension(i);
    const std::size_t ad = layout.angle_dimension(i);
    // Transformed query features for every transformation in the group.
    for (std::size_t t = 0; t < group.size(); ++t) {
      mags[t] = group[t].scale(md) * query_features[md] + group[t].offset(md);
      angles[t] =
          group[t].scale(ad) * query_features[ad] + group[t].offset(ad);
    }
    const auto [mag_min_it, mag_max_it] =
        std::minmax_element(mags.begin(), mags.end());
    low[md] = std::max(0.0, *mag_min_it - eps_f);
    high[md] = *mag_max_it + eps_f;

    const auto [ang_lo, ang_hi] = transform::SmallestCircularInterval(angles);
    const double half_width = SafeAngleHalfWidth(eps_f, *mag_min_it);
    low[ad] = ang_lo - half_width;
    high[ad] = ang_hi + half_width;
  }
  return rstar::Rect(std::move(low), std::move(high));
}

}  // namespace tsq::core
