#ifndef TSQ_CORE_SNAPSHOT_H_
#define TSQ_CORE_SNAPSHOT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace tsq::obs {
class Gauge;
}  // namespace tsq::obs

namespace tsq::core {

/// Engine-level snapshot isolation for the write path.
///
/// Readers (Execute, SaveTo) pin a snapshot with PinRead(): while any pin is
/// held, no write can commit, so a pinned reader always sees one consistent
/// (dataset, index, planner-epoch) world — never a half-applied Insert or
/// Remove. Writers (Insert, Remove, and the control-plane mutators) take
/// LockWrite(): exclusive against readers *and* each other, so a write
/// commits atomically — stage the record, the index entry and the planner
/// epoch bump, then release; the first reader to pin afterwards sees all of
/// it or none of it.
///
/// The lock is writer-preferring: once a writer is waiting, new read pins
/// queue behind it, so a stream of back-to-back queries cannot starve
/// Insert/Remove (a writer waits only for the readers already in flight).
/// Writers are serialized in arrival order by the underlying mutex.
///
/// Every committed write bumps `version()` (while still holding the write
/// lock). A ReadPin captures the version it pinned — that is the snapshot
/// identity carried into QueryTrace::snapshot_version, and what lets the
/// differential fuzzer's --mutate mode evaluate its oracle at exactly the
/// state a concurrent query saw.
///
/// Observability: the `engine.writes.snapshot_pins` gauge tracks the number
/// of currently-held read pins.
class SnapshotManager {
 public:
  SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Shared hold on the current snapshot; blocks writers until released.
  /// Movable so PinRead() can return it; not copyable.
  class ReadPin {
   public:
    ReadPin(ReadPin&& other) noexcept
        : manager_(other.manager_), version_(other.version_) {
      other.manager_ = nullptr;
    }
    ReadPin& operator=(ReadPin&&) = delete;
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;
    ~ReadPin();

    /// The committed write version this pin captured (stable for the pin's
    /// lifetime: no write can commit while it is held).
    std::uint64_t version() const { return version_; }

   private:
    friend class SnapshotManager;
    ReadPin(const SnapshotManager* manager, std::uint64_t version)
        : manager_(manager), version_(version) {}

    const SnapshotManager* manager_;
    std::uint64_t version_;
  };

  /// Exclusive hold for one write. Released on destruction; call
  /// BumpVersion() on the manager before releasing iff state was mutated.
  class WriteLock {
   public:
    WriteLock(WriteLock&& other) noexcept : manager_(other.manager_) {
      other.manager_ = nullptr;
    }
    WriteLock& operator=(WriteLock&&) = delete;
    WriteLock(const WriteLock&) = delete;
    WriteLock& operator=(const WriteLock&) = delete;
    ~WriteLock();

   private:
    friend class SnapshotManager;
    explicit WriteLock(SnapshotManager* manager) : manager_(manager) {}

    SnapshotManager* manager_;
  };

  /// Blocks until no writer is active or waiting, then pins the current
  /// snapshot. Const: pinning is a logically-read-only operation (Execute
  /// is const).
  ReadPin PinRead() const;

  /// Blocks until every reader has unpinned and any earlier writer is done,
  /// then returns the exclusive hold.
  WriteLock LockWrite();

  /// Commits one write: increments the version. Must only be called while
  /// holding the WriteLock. Returns the new version.
  std::uint64_t BumpVersion();

  /// The number of committed writes. Reading it outside a pin or the write
  /// lock is a racy-but-atomic peek (useful for logging, not for snapshot
  /// reasoning).
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  void UnpinRead() const;
  void UnlockWrite();

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable int active_readers_ = 0;
  mutable int waiting_writers_ = 0;
  mutable bool writer_active_ = false;
  std::atomic<std::uint64_t> version_{0};
  obs::Gauge* pins_gauge_;  // engine.writes.snapshot_pins
};

}  // namespace tsq::core

#endif  // TSQ_CORE_SNAPSHOT_H_
