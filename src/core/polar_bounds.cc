#include "core/polar_bounds.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "transform/transform_mbr.h"

namespace tsq::core {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

// min over m_u in [ul, uh], m_v in [vl, vh] of
//   f(m_u, m_v) = m_u^2 + m_v^2 - 2 c m_u m_v,   c = cos(gap) in [-1, 1].
// f is convex (Hessian [[2, -2c], [-2c, 2]], PSD); its only critical point
// is (0, 0), so the box minimum is at (0,0) if contained, else on an edge;
// each edge restriction is a 1-D convex quadratic minimized by clamping its
// vertex.
double BoxMin(double ul, double uh, double vl, double vh, double c) {
  const auto f = [c](double u, double v) {
    return u * u + v * v - 2.0 * c * u * v;
  };
  if (ul <= 0.0 && 0.0 <= uh && vl <= 0.0 && 0.0 <= vh) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  // Edges u = ul and u = uh: vertex at v = c*u.
  for (const double u : {ul, uh}) {
    best = std::min(best, f(u, Clamp(c * u, vl, vh)));
  }
  // Edges v = vl and v = vh: vertex at u = c*v.
  for (const double v : {vl, vh}) {
    best = std::min(best, f(Clamp(c * v, ul, uh), v));
  }
  return std::max(0.0, best);
}

}  // namespace

double PolarBoxMinSquaredDistance(double a_mag_lo, double a_mag_hi,
                                  double a_ang_lo, double a_ang_hi,
                                  double b_mag_lo, double b_mag_hi,
                                  double b_ang_lo, double b_ang_hi) {
  TSQ_DCHECK(a_mag_lo <= a_mag_hi);
  TSQ_DCHECK(b_mag_lo <= b_mag_hi);
  // Magnitudes are non-negative by construction; clamp defensively so the
  // convexity argument stays valid for slightly negative inputs.
  a_mag_lo = std::max(0.0, a_mag_lo);
  b_mag_lo = std::max(0.0, b_mag_lo);
  a_mag_hi = std::max(a_mag_lo, a_mag_hi);
  b_mag_hi = std::max(b_mag_lo, b_mag_hi);

  // Smallest circular gap between the two angle intervals.
  double gap = 0.0;
  if (!transform::CircularIntervalsIntersect(a_ang_lo, a_ang_hi, b_ang_lo,
                                             b_ang_hi)) {
    const double center_a = 0.5 * (a_ang_lo + a_ang_hi);
    const double center_b = 0.5 * (b_ang_lo + b_ang_hi);
    const double half_widths =
        0.5 * ((a_ang_hi - a_ang_lo) + (b_ang_hi - b_ang_lo));
    const double delta = std::fabs(std::remainder(center_b - center_a, kTwoPi));
    gap = std::max(0.0, delta - half_widths);
  }
  if (gap == 0.0) {
    // Angles can coincide: distance is governed by the magnitude gap alone.
    const double mag_gap =
        std::max({0.0, a_mag_lo - b_mag_hi, b_mag_lo - a_mag_hi});
    return mag_gap * mag_gap;
  }
  return BoxMin(a_mag_lo, a_mag_hi, b_mag_lo, b_mag_hi, std::cos(gap));
}

double RectPairSquaredDistanceLowerBound(
    const rstar::Rect& a, const rstar::Rect& b,
    const transform::FeatureLayout& layout) {
  TSQ_DCHECK(a.dimensions() == layout.dimensions());
  TSQ_DCHECK(b.dimensions() == layout.dimensions());
  double total = 0.0;
  for (std::size_t i = 0; i < layout.num_coefficients; ++i) {
    const std::size_t md = layout.magnitude_dimension(i);
    const std::size_t ad = layout.angle_dimension(i);
    total += layout.coefficient_weight() *
             PolarBoxMinSquaredDistance(a.low(md), a.high(md), a.low(ad),
                                        a.high(ad), b.low(md), b.high(md),
                                        b.low(ad), b.high(ad));
  }
  return total;
}

double RectPointSquaredDistanceLowerBound(
    const rstar::Rect& a, const rstar::Point& b,
    const transform::FeatureLayout& layout) {
  return RectPairSquaredDistanceLowerBound(a, rstar::Rect::FromPoint(b),
                                           layout);
}

double PointPairSquaredDistanceLowerBound(
    const rstar::Point& a, const rstar::Point& b,
    const transform::FeatureLayout& layout) {
  return RectPairSquaredDistanceLowerBound(rstar::Rect::FromPoint(a),
                                           rstar::Rect::FromPoint(b), layout);
}

}  // namespace tsq::core
