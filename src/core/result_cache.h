#ifndef TSQ_CORE_RESULT_CACHE_H_
#define TSQ_CORE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/query_spec.h"
#include "plan/plan_cache.h"

namespace tsq::core {

struct QueryResult;

/// The digest a query result is cached under, plus whether the query may be
/// cached at all. The digest covers the *exact* canonical spec (every query
/// sample, the exact epsilon — not the planner's band — every transformation
/// multiplier, partition, target and knobs), the full ExecOptions, the
/// pinned snapshot version and the engine's configuration epoch, so two
/// queries share a key only when sequential execution would have produced
/// byte-identical results. `cacheable` is false when any spec field is
/// non-finite (NaN/Inf specs are rejected or degenerate and must never be
/// cached) — the caller bypasses the cache entirely.
struct ResultCacheKey {
  bool cacheable = false;
  plan::PlanKey key;
};

/// Builds the cache key for one (spec, options) pair at one engine state.
/// `snapshot_version` is the write version the batch pinned; `config_epoch`
/// counts engine reconfigurations (buffer pool, simulated latency, fault
/// hooks) — both enter the digest, which is the cache's whole invalidation
/// story: any Insert/Remove bumps the version, any reconfiguration bumps the
/// epoch, and stale entries simply stop being addressable and age out of the
/// LRU.
ResultCacheKey ComputeResultCacheKey(const QuerySpec& spec,
                                     const ExecOptions& options,
                                     std::uint64_t snapshot_version,
                                     std::uint64_t config_epoch);

/// Bounded LRU map from ResultCacheKey digests to immutable QueryResults,
/// shared by every ExecuteBatch of one engine. Internally synchronized
/// (batches run concurrently). Entries can be *pinned* while a batch is
/// computing their value: a pinned entry holds its slot (so concurrent
/// eviction pressure cannot drop an in-flight computation) but serves
/// lookups as misses until the value is published. Errors are never
/// published — an unpinned valueless entry is erased.
///
/// Metrics: engine.result_cache.{hits,misses,evictions}.
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity = 128);

  /// The cached result for `key` (refreshing its LRU position), or nullptr.
  /// A pinned, not-yet-published entry is a miss. Counts hits/misses.
  std::shared_ptr<const QueryResult> Lookup(const plan::PlanKey& key);

  /// Reserves `key` as in-flight: inserts a valueless pinned entry (or adds
  /// a pin to an existing entry). Returns true when this call created the
  /// reservation — the caller then owns publishing via Insert() — and false
  /// when the key already existed (someone else is computing it, or a value
  /// is already published).
  bool Pin(const plan::PlanKey& key);

  /// Publishes the value for `key` (typically a pinned reservation), moves
  /// it to the MRU position and evicts unpinned LRU entries beyond capacity.
  /// Counts evictions. Pinned entries are never evicted.
  void Insert(const plan::PlanKey& key,
              std::shared_ptr<const QueryResult> value);

  /// Releases one pin on `key`. An entry left valueless and unpinned (the
  /// computation failed) is erased so the error is never served.
  void Unpin(const plan::PlanKey& key);

  /// Entries currently held (published values plus in-flight pins).
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const QueryResult> value;  // null while in flight
    std::size_t pins = 0;
  };
  using LruList = std::list<std::pair<plan::PlanKey, Entry>>;

  void EvictLocked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<plan::PlanKey, LruList::iterator, plan::PlanKeyHash> map_;
};

}  // namespace tsq::core

#endif  // TSQ_CORE_RESULT_CACHE_H_
