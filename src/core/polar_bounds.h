#ifndef TSQ_CORE_POLAR_BOUNDS_H_
#define TSQ_CORE_POLAR_BOUNDS_H_

#include "rstar/rect.h"
#include "transform/feature_layout.h"

namespace tsq::core {

/// Exact minimum of |u - v|^2 over complex u, v whose polar coordinates are
/// confined to [mag, angle] boxes A and B (angle intervals treated modulo
/// 2*pi). This is the per-coefficient building block of index-level distance
/// lower bounds: with magnitudes m_u, m_v and angular gap g,
/// |u - v|^2 = m_u^2 + m_v^2 - 2 m_u m_v cos g, minimized over the boxes.
double PolarBoxMinSquaredDistance(double a_mag_lo, double a_mag_hi,
                                  double a_ang_lo, double a_ang_hi,
                                  double b_mag_lo, double b_mag_hi,
                                  double b_ang_lo, double b_ang_hi);

/// Lower bound on the full squared Euclidean distance between any sequence
/// whose (possibly transformed) features lie in `a` and any whose features
/// lie in `b`: the sum over retained coefficients of
/// PolarBoxMinSquaredDistance, weighted by the layout's symmetry factor.
/// Mean/stddev dimensions do not contribute (they are not distance terms).
/// By Parseval, retained coefficients never exceed the total, so this is a
/// valid lower bound whatever the dropped coefficients do.
double RectPairSquaredDistanceLowerBound(const rstar::Rect& a,
                                         const rstar::Rect& b,
                                         const transform::FeatureLayout& layout);

/// Same bound with `b` degenerate (a feature point).
double RectPointSquaredDistanceLowerBound(
    const rstar::Rect& a, const rstar::Point& b,
    const transform::FeatureLayout& layout);

/// Lower bound between two feature *points* (both degenerate): the exact
/// retained-subspace distance, weighted by the symmetry factor.
double PointPairSquaredDistanceLowerBound(
    const rstar::Point& a, const rstar::Point& b,
    const transform::FeatureLayout& layout);

}  // namespace tsq::core

#endif  // TSQ_CORE_POLAR_BOUNDS_H_
