#ifndef TSQ_CORE_RANGE_QUERY_H_
#define TSQ_CORE_RANGE_QUERY_H_

#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/index.h"
#include "core/query.h"

namespace tsq::core {

/// Executes Query 1 with the chosen algorithm (Section 4):
///
///  * kSequentialScan — reads the whole record store once and evaluates the
///    distance predicate |T| times per sequence (log |T| under an ordering);
///  * kStIndex — one index traversal per transformation, each with the
///    (degenerate, single-point) transformation rectangle applied to every
///    node rectangle;
///  * kMtIndex — Algorithm 1: one traversal per transformation *rectangle*,
///    grouping per `spec.partition` (all transformations in one rectangle
///    when the partition is empty).
///
/// Parallelism (`options.num_threads`): index traversals fan out one task
/// per transformation rectangle (so ST-index gets |T| tasks), candidate
/// verification one task per fixed-size candidate chunk, and the sequential
/// scan one task per fixed-size slice of the relation. Tasks merge in
/// deterministic order, so matches and summed QueryStats are identical for
/// every thread count.
///
/// When `group_stats` is non-null it receives one entry per index traversal
/// (empty for the sequential scan), the inputs of the cost function Ck
/// (Eq. 20).
///
/// `partition_override`, when non-null and non-empty, replaces the MT-index
/// grouping that would otherwise come from `spec.partition` — this is how
/// the planner hands its chosen partition to the executor without copying
/// the spec. `options.planner.algorithm` must be concrete here; kAuto is
/// resolved by SimilarityEngine::Execute and rejected by the executor.
Result<RangeQueryResult> RunRangeQuery(const Dataset& dataset,
                                       const SequenceIndex& index,
                                       const RangeQuerySpec& spec,
                                       const ExecOptions& options,
                                       std::vector<GroupRunStats>* group_stats =
                                           nullptr,
                                       const transform::Partition*
                                           partition_override = nullptr);

/// Legacy entry point: algorithm only, single-threaded.
Result<RangeQueryResult> RunRangeQuery(const Dataset& dataset,
                                       const SequenceIndex& index,
                                       const RangeQuerySpec& spec,
                                       Algorithm algorithm,
                                       std::vector<GroupRunStats>* group_stats =
                                           nullptr);

/// Reference evaluation of Query 1 against the in-memory spectra; no I/O, no
/// filtering. Ground truth for correctness tests (Lemma 1: the indexed
/// algorithms must return exactly this set).
std::vector<Match> BruteForceRangeQuery(const Dataset& dataset,
                                        const RangeQuerySpec& spec);

/// Sorts matches by (series_id, transform_index) for set comparison.
void SortMatches(std::vector<Match>* matches);

}  // namespace tsq::core

#endif  // TSQ_CORE_RANGE_QUERY_H_
