#ifndef TSQ_CORE_RANGE_QUERY_H_
#define TSQ_CORE_RANGE_QUERY_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/index.h"
#include "core/query.h"

namespace tsq::core {

/// Internals of the range executor shared with the batch executor
/// (src/core/batch_executor.cc). The batch path must reproduce the solo
/// executor's task decomposition and per-candidate evaluation *exactly* —
/// matches are asserted byte-identical between the two — so the pieces that
/// define them live here instead of being duplicated.
namespace range_detail {

/// Task granularity of the parallel executors. Part of the determinism
/// contract only insofar as they are *constants*: chunk boundaries (and
/// hence the merge order) never depend on num_threads — or on whether the
/// query ran solo or in a batch.
inline constexpr std::size_t kScanChunk = 256;   // ids per seq-scan task
inline constexpr std::size_t kVerifyChunk = 32;  // candidates per verify task

/// Sorts the indices of one group into ascending dominance-chain order when
/// the whole transformation set forms a chain; returns false when it does
/// not (the caller falls back to the linear sweep).
bool OrderGroupByChain(const std::vector<std::size_t>& chain,
                       std::vector<std::size_t>* group);

/// The Eq. 12 distance the predicate evaluates for transformation `t`,
/// honouring the spec's TransformTarget.
double PredicateDistance2(const RangeQuerySpec& spec, std::size_t t,
                          std::span<const dft::Complex> candidate_spectrum,
                          std::span<const dft::Complex> query_spectrum);

/// Early-abandoning PredicateDistance2: exact whenever the result is
/// <= bound; any value > bound (exact or abandoned partial) means "no
/// match". Since partial sums are monotone, the `d2 < eps2` predicate and
/// every reported match distance are identical to the plain evaluation.
double PredicateDistance2Within(const RangeQuerySpec& spec, std::size_t t,
                                std::span<const dft::Complex> candidate_spectrum,
                                std::span<const dft::Complex> query_spectrum,
                                double bound);

/// Evaluates the distance predicate for one candidate against the (already
/// chain-ordered, when `ordered`) transformation indices of a group,
/// appending matches and counting comparisons.
void VerifyCandidate(const RangeQuerySpec& spec,
                     std::span<const dft::Complex> candidate_spectrum,
                     std::span<const dft::Complex> query_spectrum,
                     const std::vector<std::size_t>& group, bool ordered,
                     std::size_t series_id, std::vector<Match>* matches,
                     QueryStats* stats);

/// Full spec validation (lengths, thresholds, partition well-formedness);
/// the exact Status a malformed spec gets from solo execution.
Status ValidateRangeSpec(const Dataset& dataset, const RangeQuerySpec& spec);

}  // namespace range_detail

/// Executes Query 1 with the chosen algorithm (Section 4):
///
///  * kSequentialScan — reads the whole record store once and evaluates the
///    distance predicate |T| times per sequence (log |T| under an ordering);
///  * kStIndex — one index traversal per transformation, each with the
///    (degenerate, single-point) transformation rectangle applied to every
///    node rectangle;
///  * kMtIndex — Algorithm 1: one traversal per transformation *rectangle*,
///    grouping per `spec.partition` (all transformations in one rectangle
///    when the partition is empty).
///
/// Parallelism (`options.num_threads`): index traversals fan out one task
/// per transformation rectangle (so ST-index gets |T| tasks), candidate
/// verification one task per fixed-size candidate chunk, and the sequential
/// scan one task per fixed-size slice of the relation. Tasks merge in
/// deterministic order, so matches and summed QueryStats are identical for
/// every thread count.
///
/// When `group_stats` is non-null it receives one entry per index traversal
/// (empty for the sequential scan), the inputs of the cost function Ck
/// (Eq. 20).
///
/// `partition_override`, when non-null and non-empty, replaces the MT-index
/// grouping that would otherwise come from `spec.partition` — this is how
/// the planner hands its chosen partition to the executor without copying
/// the spec. `options.planner.algorithm` must be concrete here; kAuto is
/// resolved by SimilarityEngine::Execute and rejected by the executor.
Result<RangeQueryResult> RunRangeQuery(const Dataset& dataset,
                                       const SequenceIndex& index,
                                       const RangeQuerySpec& spec,
                                       const ExecOptions& options,
                                       std::vector<GroupRunStats>* group_stats =
                                           nullptr,
                                       const transform::Partition*
                                           partition_override = nullptr);

/// Legacy entry point: algorithm only, single-threaded.
Result<RangeQueryResult> RunRangeQuery(const Dataset& dataset,
                                       const SequenceIndex& index,
                                       const RangeQuerySpec& spec,
                                       Algorithm algorithm,
                                       std::vector<GroupRunStats>* group_stats =
                                           nullptr);

/// Reference evaluation of Query 1 against the in-memory spectra; no I/O, no
/// filtering. Ground truth for correctness tests (Lemma 1: the indexed
/// algorithms must return exactly this set).
std::vector<Match> BruteForceRangeQuery(const Dataset& dataset,
                                        const RangeQuerySpec& spec);

/// Sorts matches by (series_id, transform_index) for set comparison.
void SortMatches(std::vector<Match>* matches);

}  // namespace tsq::core

#endif  // TSQ_CORE_RANGE_QUERY_H_
