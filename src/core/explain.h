#ifndef TSQ_CORE_EXPLAIN_H_
#define TSQ_CORE_EXPLAIN_H_

#include <string>

#include "core/engine.h"

namespace tsq::core {

/// Human-readable account of one executed query: the phase-timing table of
/// its QueryTrace followed by the QueryStats counters. The analogue of a
/// database EXPLAIN ANALYZE — it describes the plan that *ran*, so it is
/// rendered from a result, not from a spec.
std::string Explain(const QueryResult& result);

/// Machine-readable form: {"trace":{...},"stats":{...}} where "trace" is
/// obs::TraceToJson and "stats" holds every QueryStats counter by name.
/// This is the document benchmarks write for --trace-json=<path>.
std::string ExplainJson(const QueryResult& result);

/// The trace of the executed query, whatever the query type.
const obs::QueryTrace& ResultTrace(const QueryResult& result);

/// JSON rendering of the stats counters alone (an object, keys fixed).
std::string StatsToJson(const QueryStats& stats);

}  // namespace tsq::core

#endif  // TSQ_CORE_EXPLAIN_H_
