#include "plan/plan_cache.h"

#include <cstring>

#include "obs/metrics.h"

namespace tsq::plan {

namespace {

// Planner-cache instruments, resolved once (registry pointers are stable for
// the life of the process).
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Gauge* cached_plans;

  static const CacheMetrics& Get() {
    static const CacheMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return CacheMetrics{registry.counter("engine.planner.cache_hits"),
                          registry.counter("engine.planner.cache_misses"),
                          registry.counter("engine.planner.cache_evictions"),
                          registry.gauge("engine.planner.cached_plans")};
    }();
    return metrics;
  }
};

constexpr std::uint64_t kPrimeLo = 0x100000001b3ull;
constexpr std::uint64_t kPrimeHi = 0x00000100000001b3ull ^ 0x9e3779b9ull;

}  // namespace

PlanKeyBuilder& PlanKeyBuilder::Add(std::uint64_t value) {
  // Mix all eight bytes at once per stream; the second stream sees the value
  // tweaked so the digests stay independent.
  lo_ = (lo_ ^ value) * kPrimeLo;
  hi_ = (hi_ ^ (value * 0x9e3779b97f4a7c15ull + 1)) * kPrimeHi;
  return *this;
}

PlanKeyBuilder& PlanKeyBuilder::AddDouble(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return Add(bits);
}

PlanKeyBuilder& PlanKeyBuilder::AddString(std::string_view text) {
  Add(text.size());
  std::uint64_t word = 0;
  std::size_t filled = 0;
  for (const char c : text) {
    word = (word << 8) | static_cast<unsigned char>(c);
    if (++filled == 8) {
      Add(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) Add(word);
  return *this;
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const PlanDecision> PlanCache::Lookup(const PlanKey& key) {
  const CacheMetrics& metrics = CacheMetrics::Get();
  const auto it = map_.find(key);
  if (it == map_.end()) {
    metrics.misses->Increment();
    return nullptr;
  }
  metrics.hits->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanCache::Insert(const PlanKey& key,
                       std::shared_ptr<const PlanDecision> decision) {
  const CacheMetrics& metrics = CacheMetrics::Get();
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(decision);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(decision));
  map_[key] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    metrics.evictions->Increment();
  }
  metrics.cached_plans->Set(static_cast<std::int64_t>(map_.size()));
}

void PlanCache::Clear() {
  map_.clear();
  lru_.clear();
  CacheMetrics::Get().cached_plans->Set(0);
}

}  // namespace tsq::plan
