#ifndef TSQ_PLAN_PLANNER_H_
#define TSQ_PLAN_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/cost_model.h"
#include "core/dataset.h"
#include "core/index.h"
#include "core/join_query.h"
#include "core/knn_query.h"
#include "core/query.h"
#include "core/query_spec.h"
#include "obs/trace.h"
#include "plan/plan_cache.h"
#include "transform/partition.h"

namespace tsq::plan {

/// A fully resolved execution plan for one query: the concrete algorithm to
/// run, the planner-chosen MT partition (empty for scan / ST / spec-supplied
/// partitions), the constants the estimates were computed with, and the
/// trace skeleton listing every candidate considered. Immutable once built —
/// the plan cache shares one instance across queries.
struct PlanDecision {
  core::Algorithm algorithm = core::Algorithm::kMtIndex;
  transform::Partition partition;
  double estimated_cost = 0.0;
  core::CostConstants constants;
  /// planned = true, cache_hit = false, candidates filled; the engine copies
  /// this into the result's QueryTrace and then sets cache_hit/actual_cost.
  obs::PlannerTrace trace;
};

/// Outcome of one Plan() call: the (possibly cached) decision plus whether
/// it came out of the plan cache.
struct Planned {
  std::shared_ptr<const PlanDecision> decision;
  bool cache_hit = false;
};

/// The cost-based query planner (the optimizer the paper's Section 5 argues
/// for): given a query spec, it enumerates candidate plans — sequential
/// scan, ST-index, and MT-index with k in {1..max_rectangles} rectangles
/// from each partitioning strategy — prices each with the Eq. 18-20 cost
/// model against a per-epoch snapshot of the index (TreeCostEstimator), and
/// returns the cheapest.
///
/// State it maintains, all lazily and behind one mutex (Plan() is safe to
/// call from concurrent Execute() calls):
///  * the index snapshot, rebuilt when the epoch changes (Insert/Remove);
///  * calibrated CostConstants — C_cmp measured as the ratio of one full
///    sequence comparison to one record-page fetch, re-measured after
///    SetSimulatedDiskLatency;
///  * a bounded LRU plan cache keyed on (transform-set signature, epsilon
///    band, spec/planner knobs, index epoch), with engine.planner.* metrics.
///
/// Planning I/O (snapshot + calibration page reads) goes through the normal
/// counted read paths; benchmarks that meter I/O should warm the planner up
/// (one kAuto query) before ResetIoStats().
class Planner {
 public:
  Planner(const core::Dataset& dataset, const core::SequenceIndex& index,
          std::size_t cache_capacity = 64);

  /// Signals an index mutation (Insert/Remove): invalidates the snapshot and
  /// every cached plan. Guarded by the planner mutex, so it is safe
  /// concurrently with Plan(); the engine additionally calls it only under
  /// its write lock (with queries drained), which is what guarantees no
  /// cached plan was ever priced against a half-committed tree.
  void BumpEpoch();
  std::uint64_t epoch() const;

  /// Drops the calibrated constants (simulated disk latency changed).
  void InvalidateCalibration();

  /// The constants Plan() would use absent an override: calibrated on first
  /// use, then cached.
  core::CostConstants CalibratedConstants();

  /// Resolves `options` (typically algorithm == kAuto) into a concrete plan
  /// for the given spec. A forced concrete algorithm short-circuits into a
  /// single-candidate decision without planning. Thread-safe.
  Result<Planned> Plan(const core::RangeQuerySpec& spec,
                       const core::PlannerOptions& options);
  Result<Planned> Plan(const core::KnnQuerySpec& spec,
                       const core::PlannerOptions& options);
  Result<Planned> Plan(const core::JoinQuerySpec& spec,
                       const core::PlannerOptions& options);

  /// Plans a whole batch under ONE mutex acquisition — one snapshot/
  /// calibration check amortized over every spec, and no plan-cache
  /// interleaving with concurrent planners mid-batch. Entry i is exactly
  /// what Plan(*specs[i], options) would have returned at this epoch
  /// (identical dispatch per kind, including the forced-algorithm
  /// short-circuit and malformed-spec fallthrough).
  std::vector<Result<Planned>> PlanBatch(
      const std::vector<const core::QuerySpec*>& specs,
      const core::PlannerOptions& options);

 private:
  enum class QueryKind { kRange = 0, kKnn = 1, kJoin = 2 };

  // All of these require mu_ held.
  Result<Planned> PlanOneLocked(const core::QuerySpec& spec,
                                const core::PlannerOptions& options);
  Result<const core::TreeCostEstimator*> SnapshotLocked();
  core::CostConstants CalibrateLocked();
  Result<Planned> PlanLocked(QueryKind kind,
                             const std::vector<transform::SpectralTransform>&
                                 transforms,
                             const transform::Partition& spec_partition,
                             double epsilon, bool use_ordering,
                             const core::PlannerOptions& options);

  const core::Dataset& dataset_;
  const core::SequenceIndex& index_;

  mutable std::mutex mu_;
  std::uint64_t epoch_ = 0;
  std::uint64_t snapshot_epoch_ = 0;
  std::optional<core::TreeCostEstimator> snapshot_;
  std::optional<core::CostConstants> calibrated_;
  PlanCache cache_;
};

}  // namespace tsq::plan

#endif  // TSQ_PLAN_PLANNER_H_
