#ifndef TSQ_PLAN_PLAN_CACHE_H_
#define TSQ_PLAN_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace tsq::plan {

struct PlanDecision;

/// Cache key for one plan decision: two independent 64-bit digests over the
/// structured key material (transform-set signature, epsilon band, spec and
/// planner knobs, index epoch). Hash-based, so a collision is possible in
/// principle; its only consequence would be executing a suboptimal — never
/// incorrect — plan, since every cached decision is a valid plan for any
/// query of the same transform count.
struct PlanKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const {
    return static_cast<std::size_t>(key.lo ^
                                    (key.hi * 0x9e3779b97f4a7c15ull));
  }
};

/// Incremental FNV-1a-style hasher feeding both digests of a PlanKey.
class PlanKeyBuilder {
 public:
  PlanKeyBuilder& Add(std::uint64_t value);
  PlanKeyBuilder& AddDouble(double value);  // bit pattern, so -0.0 != 0.0
  PlanKeyBuilder& AddString(std::string_view text);
  PlanKey key() const { return PlanKey{lo_, hi_}; }

 private:
  std::uint64_t lo_ = 0xcbf29ce484222325ull;
  std::uint64_t hi_ = 0x84222325cbf29ce4ull;
};

/// Bounded LRU map from PlanKey to an immutable PlanDecision. Not
/// internally synchronized — the Planner's mutex guards every call — but
/// the `engine.planner.*` cache metrics it maintains are process-global
/// atomics (obs::MetricsRegistry), so observers can read them concurrently.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity);

  /// Returns the cached decision (refreshing its LRU position) or nullptr.
  /// Counts engine.planner.cache_hits / cache_misses.
  std::shared_ptr<const PlanDecision> Lookup(const PlanKey& key);

  /// Inserts (or replaces) a decision, evicting the least recently used
  /// entry beyond capacity. Counts engine.planner.cache_evictions and keeps
  /// the engine.planner.cached_plans gauge current.
  void Insert(const PlanKey& key, std::shared_ptr<const PlanDecision> decision);

  /// Drops everything (the Planner calls this on epoch bumps; stale epochs
  /// could otherwise only age out of the LRU).
  void Clear();

  std::size_t size() const { return map_.size(); }

 private:
  using LruList =
      std::list<std::pair<PlanKey, std::shared_ptr<const PlanDecision>>>;

  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<PlanKey, LruList::iterator, PlanKeyHash> map_;
};

}  // namespace tsq::plan

#endif  // TSQ_PLAN_PLAN_CACHE_H_
