#include "plan/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"
#include "transform/builders.h"
#include "transform/feature_transform.h"
#include "ts/distance.h"

namespace tsq::plan {

namespace {

struct PlannerMetrics {
  obs::Counter* plans;         // fresh enumerations (cache misses that planned)
  obs::Counter* calibrations;  // cost-constant calibration runs

  static const PlannerMetrics& Get() {
    static const PlannerMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return PlannerMetrics{registry.counter("engine.planner.plans"),
                            registry.counter("engine.planner.calibrations")};
    }();
    return metrics;
  }
};

// Comparisons one verified candidate costs against a group of `count`
// transformations: count, or ~log2(count) probes under the dominance-chain
// ordering (Section 4.4).
double EffectiveComparisons(std::size_t count, bool use_ordering) {
  if (count == 0) return 0.0;
  if (!use_ordering) return static_cast<double>(count);
  return std::min(static_cast<double>(count),
                  std::floor(std::log2(static_cast<double>(count))) + 1.0);
}

// Safety check only (the executor re-validates properly): every index must
// be in range before the planner dereferences feature transforms with it.
bool PartitionIndicesInRange(const transform::Partition& partition,
                             std::size_t count) {
  for (const std::vector<std::size_t>& group : partition) {
    if (group.empty()) return false;
    for (const std::size_t t : group) {
      if (t >= count) return false;
    }
  }
  return true;
}

Planned ForcedDecision(core::Algorithm algorithm) {
  auto decision = std::make_shared<PlanDecision>();
  decision->algorithm = algorithm;
  decision->trace.planned = false;
  return Planned{std::move(decision), false};
}

std::string GroupCountLabel(const char* family, std::size_t k) {
  char text[64];
  std::snprintf(text, sizeof text, "MT k=%zu %s", k, family);
  return text;
}

}  // namespace

Planner::Planner(const core::Dataset& dataset, const core::SequenceIndex& index,
                 std::size_t cache_capacity)
    : dataset_(dataset), index_(index), cache_(cache_capacity) {}

void Planner::BumpEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
  snapshot_.reset();
  cache_.Clear();
}

std::uint64_t Planner::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void Planner::InvalidateCalibration() {
  std::lock_guard<std::mutex> lock(mu_);
  calibrated_.reset();
  // Plans priced with the old constants are stale too.
  cache_.Clear();
}

core::CostConstants Planner::CalibratedConstants() {
  std::lock_guard<std::mutex> lock(mu_);
  return CalibrateLocked();
}

Result<Planned> Planner::Plan(const core::RangeQuerySpec& spec,
                              const core::PlannerOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options.algorithm != core::Algorithm::kAuto) {
    return ForcedDecision(options.algorithm);
  }
  return PlanLocked(QueryKind::kRange, spec.transforms, spec.partition,
                    spec.epsilon, spec.use_ordering, options);
}

Result<Planned> Planner::Plan(const core::KnnQuerySpec& spec,
                              const core::PlannerOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options.algorithm != core::Algorithm::kAuto) {
    return ForcedDecision(options.algorithm);
  }
  // The best-first search expands from distance 0 outward; epsilon 0 prices
  // the lower bound of its traversal, which is enough to rank partitions.
  return PlanLocked(QueryKind::kKnn, spec.transforms, spec.partition,
                    /*epsilon=*/0.0, /*use_ordering=*/false, options);
}

Result<Planned> Planner::Plan(const core::JoinQuerySpec& spec,
                              const core::PlannerOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options.algorithm != core::Algorithm::kAuto) {
    return ForcedDecision(options.algorithm);
  }
  const double epsilon =
      spec.mode == core::JoinMode::kDistance
          ? spec.epsilon
          : ts::CorrelationToDistanceThreshold(spec.min_correlation,
                                               dataset_.length()) *
                spec.slack;
  return PlanLocked(QueryKind::kJoin, spec.transforms, spec.partition,
                    epsilon, /*use_ordering=*/false, options);
}

std::vector<Result<Planned>> Planner::PlanBatch(
    const std::vector<const core::QuerySpec*>& specs,
    const core::PlannerOptions& options) {
  std::vector<Result<Planned>> planned;
  planned.reserve(specs.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const core::QuerySpec* spec : specs) {
    planned.push_back(PlanOneLocked(*spec, options));
  }
  return planned;
}

Result<Planned> Planner::PlanOneLocked(const core::QuerySpec& spec,
                                       const core::PlannerOptions& options) {
  if (options.algorithm != core::Algorithm::kAuto) {
    return ForcedDecision(options.algorithm);
  }
  if (const auto* range = std::get_if<core::RangeQuerySpec>(&spec)) {
    return PlanLocked(QueryKind::kRange, range->transforms, range->partition,
                      range->epsilon, range->use_ordering, options);
  }
  if (const auto* knn = std::get_if<core::KnnQuerySpec>(&spec)) {
    // The best-first search expands from distance 0 outward; epsilon 0
    // prices the lower bound of its traversal, which is enough to rank
    // partitions.
    return PlanLocked(QueryKind::kKnn, knn->transforms, knn->partition,
                      /*epsilon=*/0.0, /*use_ordering=*/false, options);
  }
  const auto& join = std::get<core::JoinQuerySpec>(spec);
  const double epsilon =
      join.mode == core::JoinMode::kDistance
          ? join.epsilon
          : ts::CorrelationToDistanceThreshold(join.min_correlation,
                                               dataset_.length()) *
                join.slack;
  return PlanLocked(QueryKind::kJoin, join.transforms, join.partition,
                    epsilon, /*use_ordering=*/false, options);
}

Result<const core::TreeCostEstimator*> Planner::SnapshotLocked() {
  if (!snapshot_.has_value() || snapshot_epoch_ != epoch_) {
    Result<core::TreeCostEstimator> created =
        core::TreeCostEstimator::Create(index_);
    if (!created.ok()) return created.status();
    snapshot_ = std::move(*created);
    snapshot_epoch_ = epoch_;
  }
  return &*snapshot_;
}

core::CostConstants Planner::CalibrateLocked() {
  if (calibrated_.has_value()) return *calibrated_;
  core::CostConstants constants;  // paper defaults: C_DA = 1, C_cmp = 0.4
  if (dataset_.size() >= 2 && dataset_.length() >= 4) {
    // One comparison = one transformed squared distance over full spectra.
    const transform::SpectralTransform probe =
        transform::MovingAverageTransform(
            dataset_.length(),
            std::min<std::size_t>(10, dataset_.length() - 1));
    const std::vector<dft::Complex>& x = dataset_.spectrum(0);
    const std::vector<dft::Complex>& y = dataset_.spectrum(1);
    constexpr std::size_t kCmpReps = 2048;
    double sink = 0.0;
    const std::uint64_t cmp_start = MonotonicNanos();
    for (std::size_t i = 0; i < kCmpReps; ++i) {
      sink += probe.TransformedSquaredDistance(x, y);
    }
    const double cmp_nanos =
        static_cast<double>(MonotonicNanos() - cmp_start) / kCmpReps;
    volatile double keep_alive = sink;  // the timed loop must not fold away
    (void)keep_alive;

    // One disk access = one record-page fetch, simulated latency included.
    constexpr std::size_t kReadReps = 8;
    std::uint64_t pages = 0;
    const std::uint64_t read_start = MonotonicNanos();
    for (std::size_t i = 0; i < kReadReps; ++i) {
      const Result<std::vector<dft::Complex>> fetched =
          dataset_.FetchSpectrum(0, &pages);
      (void)fetched;  // errors (injected faults) only spoil the timing
    }
    const std::uint64_t read_elapsed = MonotonicNanos() - read_start;
    if (pages > 0 && read_elapsed > 0 && cmp_nanos > 0.0) {
      const double read_nanos =
          static_cast<double>(read_elapsed) / static_cast<double>(pages);
      constants.c_cmp = std::clamp(cmp_nanos / read_nanos, 0.01, 10.0);
    }
  }
  calibrated_ = constants;
  PlannerMetrics::Get().calibrations->Increment();
  return constants;
}

Result<Planned> Planner::PlanLocked(
    QueryKind kind,
    const std::vector<transform::SpectralTransform>& transforms,
    const transform::Partition& spec_partition, double epsilon,
    bool use_ordering, const core::PlannerOptions& options) {
  const std::size_t count = transforms.size();
  // Malformed specs fall through to the executor, which owns the proper
  // validation diagnostics; planning them would dereference out of range.
  if (count == 0 || !std::isfinite(epsilon) || epsilon < 0.0 ||
      !PartitionIndicesInRange(spec_partition, count)) {
    return ForcedDecision(core::Algorithm::kMtIndex);
  }

  const core::CostConstants constants =
      options.cost_constants_override.has_value()
          ? *options.cost_constants_override
          : CalibrateLocked();

  // ---- Cache key: everything the decision below depends on. ----
  PlanKeyBuilder key;
  key.Add(static_cast<std::uint64_t>(kind));
  key.Add(epoch_);
  key.Add(count);
  for (const transform::SpectralTransform& t : transforms) {
    key.AddString(t.label());
    key.Add(t.length());
    for (std::size_t f = 0; f < t.length(); ++f) {
      const dft::Complex m = t.multiplier(f);
      key.AddDouble(m.real());
      key.AddDouble(m.imag());
    }
  }
  // Epsilon enters banded (quarter powers of two): near-identical thresholds
  // reuse one plan, which is the point of the cache.
  const std::int64_t band =
      epsilon <= 0.0
          ? std::numeric_limits<std::int64_t>::min()
          : static_cast<std::int64_t>(std::llround(std::log2(epsilon) * 4.0));
  key.Add(static_cast<std::uint64_t>(band));
  key.Add(use_ordering ? 1 : 0);
  key.Add(spec_partition.size());
  for (const std::vector<std::size_t>& group : spec_partition) {
    key.Add(group.size());
    for (const std::size_t t : group) key.Add(t);
  }
  key.Add(options.max_rectangles);
  key.Add(static_cast<std::uint64_t>(options.partitioning));
  key.AddDouble(constants.c_da);
  key.AddDouble(constants.c_cmp);

  if (std::shared_ptr<const PlanDecision> cached = cache_.Lookup(key.key())) {
    return Planned{std::move(cached), true};
  }

  Result<const core::TreeCostEstimator*> snapshot = SnapshotLocked();
  if (!snapshot.ok()) return snapshot.status();
  const core::TreeCostEstimator& estimator = **snapshot;
  const transform::FeatureLayout& layout = dataset_.layout();

  std::vector<transform::FeatureTransform> feature_transforms;
  feature_transforms.reserve(count);
  for (const transform::SpectralTransform& t : transforms) {
    feature_transforms.push_back(t.ToFeatureTransform(layout));
  }

  const double active = static_cast<double>(dataset_.active_size());
  const double total_nodes = estimator.total_nodes();
  const double record_pages = static_cast<double>(dataset_.record_pages());
  // Record pages one candidate fetch touches, on average.
  const double pages_per_record =
      active > 0.0 ? record_pages / active : 1.0;

  // Eq. 19 per-rectangle cost, summed over the partition (Eq. 20), plus the
  // candidate-fetch pages (every rectangle fetches its own candidates, so
  // over-splitting re-reads overlapping candidate sets — the term that
  // balances the tighter-rectangles-vs-more-traversals trade-off). For
  // self-joins the traversal is a spatial join, priced with a coarse
  // node-pair model (clamped by the tree size); its job is ranking scan
  // vs index and packed vs split partitions, not absolute accuracy.
  const auto price_partition =
      [&](const transform::Partition& partition) -> double {
    double total = 0.0;
    std::vector<transform::FeatureTransform> group_fts;
    for (const std::vector<std::size_t>& group : partition) {
      group_fts.clear();
      for (const std::size_t t : group) {
        group_fts.push_back(feature_transforms[t]);
      }
      const core::TreeCostEstimator::Estimate estimate =
          estimator.EstimateTraversal(group_fts, epsilon, layout);
      const double nt = EffectiveComparisons(group.size(), use_ordering);
      const double candidates =
          std::min(estimate.hit_fraction * estimator.indexed_points(), active);
      if (kind == QueryKind::kJoin) {
        const double da_pairs =
            std::min(estimate.da_all * (1.0 + estimate.da_leaf),
                     total_nodes * total_nodes);
        const double candidate_pairs =
            std::min(candidates * candidates, 0.5 * active * active);
        total += constants.c_da * da_pairs +
                 constants.c_cmp * candidate_pairs * nt;
      } else {
        const double fetch_pages = candidates * pages_per_record;
        total += constants.c_da * (estimate.da_all + fetch_pages) +
                 constants.c_cmp * candidates * nt;
      }
    }
    return total;
  };

  struct Candidate {
    core::Algorithm algorithm;
    transform::Partition partition;
    std::string label;
    double cost = 0.0;
  };
  std::vector<Candidate> candidates;

  // Sequential scan (Eq. 18): every record page once, then the predicate
  // against every live sequence — |T| times each (all pairs for a join).
  const double scan_evals =
      kind == QueryKind::kJoin
          ? 0.5 * active * (active - 1.0) * static_cast<double>(count)
          : active * EffectiveComparisons(count, use_ordering);
  candidates.push_back(Candidate{
      core::Algorithm::kSequentialScan,
      {},
      "seq-scan",
      constants.c_da * record_pages + constants.c_cmp * scan_evals});

  // ST-index: one traversal per transformation (singleton rectangles). The
  // executor derives the singleton partition itself, so none is attached.
  candidates.push_back(
      Candidate{core::Algorithm::kStIndex,
                {},
                "ST-index",
                price_partition(transform::PartitionSingletons(count))});

  if (!spec_partition.empty()) {
    // The caller pinned a partition: the only MT plan considered is theirs.
    candidates.push_back(
        Candidate{core::Algorithm::kMtIndex, spec_partition,
                  GroupCountLabel("spec", spec_partition.size()),
                  price_partition(spec_partition)});
  } else {
    const std::size_t k_max =
        std::min(count, std::max<std::size_t>(1, options.max_rectangles));
    const core::PartitioningStrategy strategy = options.partitioning;
    const auto family_enabled = [&](core::PartitioningStrategy s) {
      return strategy == core::PartitioningStrategy::kAuto || strategy == s;
    };

    if (family_enabled(core::PartitioningStrategy::kPacked)) {
      transform::Partition packed = transform::PartitionAll(count);
      const double cost = price_partition(packed);
      candidates.push_back(Candidate{core::Algorithm::kMtIndex,
                                     std::move(packed),
                                     GroupCountLabel("packed", 1), cost});
    }
    if (family_enabled(core::PartitioningStrategy::kContiguous)) {
      // k = count would duplicate ST-index, so the sweep stops short of it.
      for (std::size_t k = 2; k <= k_max && k < count; ++k) {
        transform::Partition partition =
            transform::PartitionIntoGroups(count, k);
        const double cost = price_partition(partition);
        candidates.push_back(Candidate{core::Algorithm::kMtIndex,
                                       std::move(partition),
                                       GroupCountLabel("contiguous", k),
                                       cost});
      }
    }
    if (family_enabled(core::PartitioningStrategy::kClustered)) {
      // Gap detection fixes the cluster boundaries; sweeping the per-group
      // cap over powers of two varies how finely each cluster is split.
      std::vector<std::size_t> seen_counts;
      for (std::size_t target = 1; target <= k_max; target *= 2) {
        const std::size_t per_group = (count + target - 1) / target;
        transform::Partition partition =
            transform::PartitionByClusters(feature_transforms, per_group);
        const std::size_t k = partition.size();
        if (k == 0 || k >= count) continue;  // empty or ST duplicate
        if (std::find(seen_counts.begin(), seen_counts.end(), k) !=
            seen_counts.end()) {
          continue;
        }
        seen_counts.push_back(k);
        const double cost = price_partition(partition);
        candidates.push_back(Candidate{core::Algorithm::kMtIndex,
                                       std::move(partition),
                                       GroupCountLabel("clustered", k),
                                       cost});
      }
    }
  }

  // Cheapest wins; ties keep the earliest candidate, and the enumeration
  // order is fixed, so the decision is deterministic.
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].cost < candidates[best].cost) best = i;
  }

  auto decision = std::make_shared<PlanDecision>();
  decision->algorithm = candidates[best].algorithm;
  decision->partition = candidates[best].partition;
  decision->estimated_cost = candidates[best].cost;
  decision->constants = constants;
  decision->trace.planned = true;
  decision->trace.cache_hit = false;
  decision->trace.estimated_cost = candidates[best].cost;
  decision->trace.candidates.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    decision->trace.candidates.push_back(obs::PlanCandidateTrace{
        candidates[i].label, candidates[i].cost, i == best});
  }

  PlannerMetrics::Get().plans->Increment();
  cache_.Insert(key.key(), decision);
  return Planned{std::move(decision), false};
}

}  // namespace tsq::plan
