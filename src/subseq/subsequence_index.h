#ifndef TSQ_SUBSEQ_SUBSEQUENCE_INDEX_H_
#define TSQ_SUBSEQ_SUBSEQUENCE_INDEX_H_

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "dft/fft.h"
#include "rstar/rstar_tree.h"
#include "storage/page_file.h"
#include "storage/record_store.h"
#include "transform/feature_layout.h"
#include "transform/spectral_transform.h"
#include "ts/series.h"

namespace tsq::subseq {

/// Subsequence similarity search in the style of Faloutsos, Ranganathan &
/// Manolopoulos (SIGMOD 1994) — the extension of the paper's indexing
/// technique its Section 2.1 points to — fused with the paper's
/// multiple-transformation machinery:
///
///  * every length-w sliding window of every stored sequence maps to a point
///    in the same polar DFT feature space the whole-sequence index uses
///    (windows are normalized first, so matching is shift/scale-invariant
///    per window, Goldin-Kanellakis style);
///  * consecutive window points form a *trail*; trails are cut into
///    sub-trail MBRs by FRM's greedy marginal-cost heuristic, and the MBRs
///    go into an R*-tree (far fewer entries than one per window);
///  * a range query draws a safe window around the query's features and
///    collects intersecting sub-trails; every window offset they cover is
///    verified exactly against the record store (page reads counted);
///  * a *set of spectral transformations* can be attached to the query:
///    exactly as in the paper's Algorithm 1, the transformation MBR is
///    applied to each sub-trail rectangle during one traversal, and the
///    post-processing step checks every (offset, transformation) pair.
struct SubsequenceOptions {
  /// Sliding-window length (the indexable query length). >= 4.
  std::size_t window = 64;
  /// Feature layout of the window points (mean/std dims hold the *window's*
  /// raw mean/stddev).
  transform::FeatureLayout layout;
  /// FRM marginal-cost probe extent: the assumed query half-width added to
  /// every MBR side when estimating its access cost during trail splitting.
  double probe_extent = 0.25;
  /// Hard cap on windows per sub-trail.
  std::size_t max_subtrail = 64;
  rstar::TreeOptions tree;
};

/// One qualifying subsequence occurrence.
struct SubseqMatch {
  std::size_t sequence = 0;
  std::size_t offset = 0;           // window start within the sequence
  std::size_t transform_index = 0;  // 0 when no transformations were given
  double distance = 0.0;

  bool operator==(const SubseqMatch&) const = default;
};

/// Counters in the units of the paper's cost model.
struct SubseqStats {
  std::uint64_t index_nodes_accessed = 0;
  std::uint64_t record_pages_read = 0;
  std::uint64_t candidate_windows = 0;
  std::uint64_t comparisons = 0;
  std::uint64_t subtrails_hit = 0;
};

class SubsequenceIndex {
 public:
  explicit SubsequenceIndex(SubsequenceOptions options = SubsequenceOptions());

  /// Stores a sequence (length >= window) and indexes all its sliding
  /// windows; returns the sequence id.
  Result<std::size_t> AddSequence(const ts::Series& series);

  /// Finds every (sequence, offset[, transformation]) whose normalized
  /// length-w window satisfies D(t(win), t(q)) < epsilon, where q is the
  /// normalized query window. With an empty `transforms` span the identity
  /// is used (plain subsequence matching). `query` must have length
  /// window().
  Result<std::vector<SubseqMatch>> RangeSearch(
      const ts::Series& query, double epsilon,
      std::span<const transform::SpectralTransform> transforms = {},
      SubseqStats* stats = nullptr) const;

  /// Reference evaluation scanning every window (ground truth for tests).
  std::vector<SubseqMatch> BruteForce(
      const ts::Series& query, double epsilon,
      std::span<const transform::SpectralTransform> transforms = {}) const;

  std::size_t window() const { return options_.window; }
  std::size_t sequence_count() const { return sequence_lengths_.size(); }
  std::size_t window_count() const { return window_count_; }
  /// Sub-trail MBRs in the tree (the compression FRM buys over one entry
  /// per window).
  std::size_t subtrail_count() const { return subtrails_.size(); }
  const rstar::RStarTree& tree() const { return *tree_; }

 private:
  struct Subtrail {
    std::size_t sequence = 0;
    std::size_t first_offset = 0;
    std::size_t count = 0;
  };

  // Feature point of one normalized window.
  rstar::Point WindowFeatures(std::span<const double> window) const;
  // FRM cost of an MBR: expected accesses of a probe_extent-sized query.
  double MbrCost(const rstar::Rect& rect) const;

  SubsequenceOptions options_;
  std::unique_ptr<dft::FftPlan> plan_;
  mutable storage::PageFile record_file_;
  std::unique_ptr<storage::RecordStore> records_;
  std::vector<storage::RecordId> record_ids_;
  std::vector<std::size_t> sequence_lengths_;
  std::vector<Subtrail> subtrails_;
  mutable storage::PageFile index_file_;
  std::unique_ptr<rstar::RStarTree> tree_;
  std::size_t window_count_ = 0;
};

}  // namespace tsq::subseq

#endif  // TSQ_SUBSEQ_SUBSEQUENCE_INDEX_H_
