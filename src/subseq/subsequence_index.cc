#include "subseq/subsequence_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/feature.h"
#include "transform/transform_mbr.h"
#include "ts/normal_form.h"

namespace tsq::subseq {

SubsequenceIndex::SubsequenceIndex(SubsequenceOptions options)
    : options_(std::move(options)) {
  TSQ_CHECK_GE(options_.window, std::size_t{4});
  TSQ_CHECK_GE(options_.max_subtrail, std::size_t{1});
  TSQ_CHECK(options_.probe_extent > 0.0);
  plan_ = std::make_unique<dft::FftPlan>(options_.window);
  records_ = std::make_unique<storage::RecordStore>(&record_file_);
  tree_ = std::make_unique<rstar::RStarTree>(
      &index_file_, options_.layout.dimensions(), options_.tree);
}

rstar::Point SubsequenceIndex::WindowFeatures(
    std::span<const double> window) const {
  const ts::NormalForm normal = ts::Normalize(window);
  const std::vector<dft::Complex> spectrum = plan_->Forward(normal.values);
  return core::ExtractFeatures(normal, spectrum, options_.layout);
}

double SubsequenceIndex::MbrCost(const rstar::Rect& rect) const {
  // Only the retained-coefficient dimensions filter queries (the query
  // region is unbounded on mean/stddev), so only they enter the FRM
  // marginal-cost estimate; including the wide raw-statistics dimensions
  // would shred trails into near-singletons.
  double cost = 1.0;
  for (std::size_t i = 0; i < options_.layout.num_coefficients; ++i) {
    cost *= rect.Extent(options_.layout.magnitude_dimension(i)) +
            2.0 * options_.probe_extent;
    cost *= rect.Extent(options_.layout.angle_dimension(i)) +
            2.0 * options_.probe_extent;
  }
  return cost;
}

Result<std::size_t> SubsequenceIndex::AddSequence(const ts::Series& series) {
  if (series.size() < options_.window) {
    return Status::InvalidArgument("sequence shorter than the window");
  }
  const std::size_t sequence = sequence_lengths_.size();
  Result<storage::RecordId> record = records_->AppendSeries(series);
  if (!record.ok()) return record.status();
  record_ids_.push_back(*record);
  sequence_lengths_.push_back(series.size());

  // Build the trail and cut it into sub-trail MBRs with FRM's greedy
  // marginal-cost rule: extend the current MBR when covering the next window
  // point is cheaper than opening a fresh MBR for it.
  const std::size_t offsets = series.size() - options_.window + 1;
  const double point_cost = MbrCost(
      rstar::Rect::FromPoint(rstar::Point(options_.layout.dimensions(), 0.0)));

  rstar::Rect current = rstar::Rect::Empty(options_.layout.dimensions());
  std::size_t first = 0;
  std::size_t count = 0;
  const auto flush = [&]() -> Status {
    if (count == 0) return Status::Ok();
    const std::uint64_t id = subtrails_.size();
    subtrails_.push_back(Subtrail{sequence, first, count});
    return tree_->Insert(current, id);
  };
  for (std::size_t offset = 0; offset < offsets; ++offset) {
    const rstar::Point features = WindowFeatures(
        std::span<const double>(series.data() + offset, options_.window));
    const rstar::Rect point_rect = rstar::Rect::FromPoint(features);
    if (count == 0) {
      current = point_rect;
      first = offset;
      count = 1;
      continue;
    }
    rstar::Rect grown = current;
    grown.Enlarge(point_rect);
    const bool over_cap = count >= options_.max_subtrail;
    const bool cheaper_apart =
        MbrCost(grown) > MbrCost(current) + point_cost;
    if (over_cap || cheaper_apart) {
      TSQ_RETURN_IF_ERROR(flush());
      current = point_rect;
      first = offset;
      count = 1;
    } else {
      current = std::move(grown);
      ++count;
    }
  }
  TSQ_RETURN_IF_ERROR(flush());
  window_count_ += offsets;
  return sequence;
}

Result<std::vector<SubseqMatch>> SubsequenceIndex::RangeSearch(
    const ts::Series& query, double epsilon,
    std::span<const transform::SpectralTransform> transforms,
    SubseqStats* stats) const {
  if (query.size() != options_.window) {
    return Status::InvalidArgument("query length must equal the window");
  }
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative distance threshold");
  }
  const std::vector<transform::SpectralTransform> identity = {
      transform::SpectralTransform::Identity(options_.window)};
  if (transforms.empty()) transforms = identity;
  for (const transform::SpectralTransform& t : transforms) {
    if (t.length() != options_.window) {
      return Status::InvalidArgument(
          "transformation length must equal the window: " + t.label());
    }
    if (options_.layout.use_symmetry && !t.PreservesRealSequences()) {
      return Status::InvalidArgument(
          "symmetry-based filtering requires real-preserving "
          "transformations: " +
          t.label());
    }
  }

  const ts::NormalForm query_normal = ts::Normalize(query);
  const std::vector<dft::Complex> query_spectrum =
      plan_->Forward(query_normal.values);
  const rstar::Point query_features =
      core::ExtractFeatures(query_normal, query_spectrum, options_.layout);

  std::vector<transform::FeatureTransform> fts;
  fts.reserve(transforms.size());
  for (const transform::SpectralTransform& t : transforms) {
    fts.push_back(t.ToFeatureTransform(options_.layout));
  }
  const transform::TransformMbr mbr(fts, options_.layout);
  const rstar::Rect query_region =
      core::BuildQueryRegion(query_features, fts, epsilon, options_.layout);

  std::vector<rstar::Entry> hits;
  rstar::SearchStats search_stats;
  TSQ_RETURN_IF_ERROR(tree_->Search(
      [&](const rstar::Rect& rect) {
        return mbr.AppliedIntersects(rect, query_region);
      },
      &hits, &search_stats));

  const double eps2 = epsilon * epsilon;
  std::vector<SubseqMatch> matches;
  const std::uint64_t record_reads_before = record_file_.stats().reads;
  std::uint64_t candidate_windows = 0;
  std::uint64_t comparisons = 0;
  for (const rstar::Entry& entry : hits) {
    const Subtrail& trail = subtrails_[entry.id];
    // One ranged fetch covers all of the sub-trail's windows.
    const std::size_t span = trail.count + options_.window - 1;
    Result<ts::Series> values = records_->GetSeriesRange(
        record_ids_[trail.sequence], trail.first_offset, span);
    if (!values.ok()) return values.status();
    candidate_windows += trail.count;
    for (std::size_t k = 0; k < trail.count; ++k) {
      const std::span<const double> window(values->data() + k,
                                           options_.window);
      const ts::NormalForm normal = ts::Normalize(window);
      const std::vector<dft::Complex> spectrum =
          plan_->Forward(normal.values);
      for (std::size_t t = 0; t < transforms.size(); ++t) {
        ++comparisons;
        const double d2 =
            transforms[t].TransformedSquaredDistance(spectrum, query_spectrum);
        if (d2 < eps2) {
          matches.push_back(SubseqMatch{trail.sequence,
                                        trail.first_offset + k, t,
                                        std::sqrt(d2)});
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->index_nodes_accessed += search_stats.nodes_accessed;
    stats->record_pages_read +=
        record_file_.stats().reads - record_reads_before;
    stats->candidate_windows += candidate_windows;
    stats->comparisons += comparisons;
    stats->subtrails_hit += hits.size();
  }
  return matches;
}

std::vector<SubseqMatch> SubsequenceIndex::BruteForce(
    const ts::Series& query, double epsilon,
    std::span<const transform::SpectralTransform> transforms) const {
  TSQ_CHECK_EQ(query.size(), options_.window);
  const std::vector<transform::SpectralTransform> identity = {
      transform::SpectralTransform::Identity(options_.window)};
  if (transforms.empty()) transforms = identity;
  const ts::NormalForm query_normal = ts::Normalize(query);
  const std::vector<dft::Complex> query_spectrum =
      plan_->Forward(query_normal.values);
  const double eps2 = epsilon * epsilon;

  std::vector<SubseqMatch> matches;
  for (std::size_t sequence = 0; sequence < sequence_lengths_.size();
       ++sequence) {
    Result<ts::Series> values = records_->GetSeries(record_ids_[sequence]);
    TSQ_CHECK(values.ok()) << values.status().ToString();
    const std::size_t offsets =
        sequence_lengths_[sequence] - options_.window + 1;
    for (std::size_t offset = 0; offset < offsets; ++offset) {
      const std::span<const double> window(values->data() + offset,
                                           options_.window);
      const ts::NormalForm normal = ts::Normalize(window);
      const std::vector<dft::Complex> spectrum =
          plan_->Forward(normal.values);
      for (std::size_t t = 0; t < transforms.size(); ++t) {
        const double d2 =
            transforms[t].TransformedSquaredDistance(spectrum, query_spectrum);
        if (d2 < eps2) {
          matches.push_back(
              SubseqMatch{sequence, offset, t, std::sqrt(d2)});
        }
      }
    }
  }
  return matches;
}

}  // namespace tsq::subseq
