#ifndef TSQ_TRANSFORM_FEATURE_LAYOUT_H_
#define TSQ_TRANSFORM_FEATURE_LAYOUT_H_

#include <cstddef>

#include "common/check.h"

namespace tsq::transform {

/// Describes how a time sequence maps to the dimensions of the
/// multidimensional index.
///
/// The paper's layout (Section 5): dimension 0 = mean of the original
/// series, dimension 1 = its standard deviation, then for each retained DFT
/// coefficient f = 1..k of the *normal form* a (magnitude, phase angle)
/// pair. Coefficient 0 is skipped because it is identically zero for normal
/// forms. The polar representation is what makes the paper's transformation
/// MBRs axis-aligned: a spectral transformation multiplies magnitudes and
/// adds to angles.
struct FeatureLayout {
  /// Store the raw series' mean and stddev as the first two dimensions.
  bool include_mean_std = true;
  /// Number of retained DFT coefficients (each contributes 2 dimensions).
  std::size_t num_coefficients = 2;
  /// Index of the first retained coefficient (1 skips the DC term).
  std::size_t first_coefficient = 1;
  /// Double each retained coefficient's contribution to distance bounds,
  /// exploiting |X_{n-f}| == |X_f| for real sequences (the symmetry-property
  /// improvement of the author's thesis, Section 2.1).
  bool use_symmetry = true;

  std::size_t dimensions() const {
    return (include_mean_std ? 2 : 0) + 2 * num_coefficients;
  }

  std::size_t mean_dimension() const {
    TSQ_DCHECK(include_mean_std);
    return 0;
  }
  std::size_t stddev_dimension() const {
    TSQ_DCHECK(include_mean_std);
    return 1;
  }

  /// Dimension holding |X_f| for the i-th retained coefficient (0-based).
  std::size_t magnitude_dimension(std::size_t i) const {
    TSQ_DCHECK(i < num_coefficients);
    return (include_mean_std ? 2 : 0) + 2 * i;
  }

  /// Dimension holding angle(X_f) for the i-th retained coefficient.
  std::size_t angle_dimension(std::size_t i) const {
    return magnitude_dimension(i) + 1;
  }

  /// DFT coefficient index of the i-th retained coefficient.
  std::size_t coefficient(std::size_t i) const {
    TSQ_DCHECK(i < num_coefficients);
    return first_coefficient + i;
  }

  /// True when dimension `d` holds a phase angle (and therefore lives on a
  /// circle: intersection tests must wrap modulo 2*pi).
  bool is_angle_dimension(std::size_t d) const {
    const std::size_t base = include_mean_std ? 2 : 0;
    return d >= base && (d - base) % 2 == 1;
  }

  /// True when dimension `d` holds a coefficient magnitude.
  bool is_magnitude_dimension(std::size_t d) const {
    const std::size_t base = include_mean_std ? 2 : 0;
    return d >= base && (d - base) % 2 == 0;
  }

  /// Weight of dimension pair (magnitude, angle) in squared-distance lower
  /// bounds: 2 when the symmetry property is exploited, else 1.
  double coefficient_weight() const { return use_symmetry ? 2.0 : 1.0; }
};

}  // namespace tsq::transform

#endif  // TSQ_TRANSFORM_FEATURE_LAYOUT_H_
