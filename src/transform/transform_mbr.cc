#include "transform/transform_mbr.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dft/spectrum.h"

namespace tsq::transform {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}  // namespace

std::pair<double, double> SmallestCircularInterval(
    std::span<const double> angles) {
  TSQ_CHECK(!angles.empty());
  std::vector<double> sorted(angles.begin(), angles.end());
  for (double& a : sorted) a = dft::WrapAngle(a);
  std::sort(sorted.begin(), sorted.end());
  // The smallest covering interval is the complement of the largest gap
  // between circularly consecutive angles.
  double best_gap = kTwoPi - (sorted.back() - sorted.front());
  std::size_t gap_after = sorted.size() - 1;  // gap between last and first
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    const double gap = sorted[i + 1] - sorted[i];
    if (gap > best_gap) {
      best_gap = gap;
      gap_after = i;
    }
  }
  if (gap_after == sorted.size() - 1) {
    return {sorted.front(), sorted.back()};
  }
  // Interval starts after the largest gap and wraps past pi.
  return {sorted[gap_after + 1], sorted[gap_after] + kTwoPi};
}

bool CircularIntervalsIntersect(double a_lo, double a_hi, double b_lo,
                                double b_hi) {
  TSQ_DCHECK(a_lo <= a_hi);
  TSQ_DCHECK(b_lo <= b_hi);
  const double width_a = a_hi - a_lo;
  const double width_b = b_hi - b_lo;
  if (width_a + width_b >= kTwoPi) return true;
  const double center_a = 0.5 * (a_lo + a_hi);
  const double center_b = 0.5 * (b_lo + b_hi);
  // Reduce the center separation to (-pi, pi]; intervals (as arcs) intersect
  // iff the separation is at most the sum of half-widths.
  double delta = std::remainder(center_b - center_a, kTwoPi);
  return std::fabs(delta) <= 0.5 * (width_a + width_b) + 1e-12;
}

bool CircularIntersects(const rstar::Rect& a, const rstar::Rect& b,
                        const FeatureLayout& layout) {
  TSQ_DCHECK(a.dimensions() == b.dimensions());
  for (std::size_t d = 0; d < a.dimensions(); ++d) {
    if (layout.is_angle_dimension(d)) {
      if (!CircularIntervalsIntersect(a.low(d), a.high(d), b.low(d),
                                      b.high(d))) {
        return false;
      }
    } else {
      if (a.low(d) > b.high(d) || b.low(d) > a.high(d)) return false;
    }
  }
  return true;
}

TransformMbr::TransformMbr(std::span<const FeatureTransform> transforms,
                           const FeatureLayout& layout)
    : layout_(layout), transform_count_(transforms.size()) {
  TSQ_CHECK(!transforms.empty());
  const std::size_t dims = transforms.front().dimensions();
  TSQ_CHECK_EQ(dims, layout.dimensions());
  mult_low_.assign(dims, std::numeric_limits<double>::infinity());
  mult_high_.assign(dims, -std::numeric_limits<double>::infinity());
  add_low_.assign(dims, std::numeric_limits<double>::infinity());
  add_high_.assign(dims, -std::numeric_limits<double>::infinity());

  for (const FeatureTransform& t : transforms) {
    TSQ_CHECK_EQ(t.dimensions(), dims);
    for (std::size_t d = 0; d < dims; ++d) {
      mult_low_[d] = std::min(mult_low_[d], t.scale(d));
      mult_high_[d] = std::max(mult_high_[d], t.scale(d));
      if (!layout.is_angle_dimension(d)) {
        add_low_[d] = std::min(add_low_[d], t.offset(d));
        add_high_[d] = std::max(add_high_[d], t.offset(d));
      }
    }
  }
  // Angle-offset dimensions: smallest circular covering interval.
  std::vector<double> angles(transforms.size());
  for (std::size_t d = 0; d < dims; ++d) {
    if (!layout.is_angle_dimension(d)) continue;
    for (std::size_t i = 0; i < transforms.size(); ++i) {
      angles[i] = transforms[i].offset(d);
    }
    const auto [lo, hi] = SmallestCircularInterval(angles);
    add_low_[d] = lo;
    add_high_[d] = hi;
  }
}

rstar::Rect TransformMbr::Apply(const rstar::Rect& data) const {
  TSQ_CHECK_EQ(data.dimensions(), dimensions());
  const std::size_t dims = dimensions();
  std::vector<double> low(dims), high(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const double products[4] = {
        mult_low_[d] * data.low(d), mult_low_[d] * data.high(d),
        mult_high_[d] * data.low(d), mult_high_[d] * data.high(d)};
    const auto [pmin, pmax] = std::minmax_element(products, products + 4);
    low[d] = add_low_[d] + *pmin;
    high[d] = add_high_[d] + *pmax;
  }
  return rstar::Rect(std::move(low), std::move(high));
}

bool TransformMbr::AppliedIntersects(const rstar::Rect& data,
                                     const rstar::Rect& query) const {
  TSQ_DCHECK(data.dimensions() == dimensions());
  TSQ_DCHECK(query.dimensions() == dimensions());
  for (std::size_t d = 0; d < dimensions(); ++d) {
    const double p1 = mult_low_[d] * data.low(d);
    const double p2 = mult_low_[d] * data.high(d);
    const double p3 = mult_high_[d] * data.low(d);
    const double p4 = mult_high_[d] * data.high(d);
    const double lo = add_low_[d] + std::min(std::min(p1, p2), std::min(p3, p4));
    const double hi =
        add_high_[d] + std::max(std::max(p1, p2), std::max(p3, p4));
    if (layout_.is_angle_dimension(d)) {
      if (!CircularIntervalsIntersect(lo, hi, query.low(d), query.high(d))) {
        return false;
      }
    } else {
      if (lo > query.high(d) || query.low(d) > hi) return false;
    }
  }
  return true;
}

bool TransformMbr::Covers(const FeatureTransform& t, double tolerance) const {
  TSQ_CHECK_EQ(t.dimensions(), dimensions());
  for (std::size_t d = 0; d < dimensions(); ++d) {
    if (t.scale(d) < mult_low_[d] - tolerance ||
        t.scale(d) > mult_high_[d] + tolerance) {
      return false;
    }
    if (layout_.is_angle_dimension(d)) {
      // Membership modulo 2*pi: offset must fall inside the unwrapped
      // interval after shifting by a multiple of 2*pi.
      const double width = add_high_[d] - add_low_[d];
      double rel = std::remainder(t.offset(d) - add_low_[d], kTwoPi);
      if (rel < 0.0) rel += kTwoPi;
      if (rel > width + tolerance && kTwoPi - rel > tolerance) return false;
    } else {
      if (t.offset(d) < add_low_[d] - tolerance ||
          t.offset(d) > add_high_[d] + tolerance) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace tsq::transform
