#ifndef TSQ_TRANSFORM_CLUSTER_H_
#define TSQ_TRANSFORM_CLUSTER_H_

#include <cstddef>
#include <span>
#include <vector>

namespace tsq::transform {

/// Single-link agglomerative clustering of points in R^d.
///
/// The paper (Sections 4.3, 5.2) recommends detecting clusters among the
/// transformation points so that no MBR spans the gap between two clusters —
/// it cites CURE, but for the small transformation sets in play (tens of
/// points) single-link agglomeration is exact and sufficient: two
/// well-separated clusters are split before any intra-cluster link breaks.
///
/// Returns a label in [0, k) per input point.
std::vector<std::size_t> AgglomerativeClusters(
    std::span<const std::vector<double>> points, std::size_t k);

/// Chooses the number of clusters automatically: merges greedily and cuts at
/// the largest relative jump in merge distance (a jump of more than
/// `gap_ratio` over the previous merge). Returns per-point labels;
/// the number of clusters is 1 + max(labels).
std::vector<std::size_t> DetectClusters(
    std::span<const std::vector<double>> points, double gap_ratio = 3.0);

}  // namespace tsq::transform

#endif  // TSQ_TRANSFORM_CLUSTER_H_
