#include "transform/ordering.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "dft/fft.h"
#include "ts/distance.h"

namespace tsq::transform {

bool IsScaleFamily(std::span<const SpectralTransform> transforms,
                   double tolerance) {
  for (const SpectralTransform& t : transforms) {
    const dft::Complex first = t.multiplier(0);
    if (std::fabs(first.imag()) > tolerance) return false;
    for (std::size_t f = 1; f < t.length(); ++f) {
      if (std::abs(t.multiplier(f) - first) > tolerance) return false;
    }
  }
  return true;
}

std::vector<std::size_t> DominanceChain(
    std::span<const SpectralTransform> transforms, double tolerance) {
  const std::size_t count = transforms.size();
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (count <= 1) return order;

  // Sort by total gain, then verify coefficient-wise dominance along the
  // chain; dominance is transitive, so adjacent checks suffice.
  std::vector<double> gain(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t f = 0; f < transforms[i].length(); ++f) {
      gain[i] += std::norm(transforms[i].multiplier(f));
    }
  }
  std::sort(order.begin(), order.end(),
            [&gain](std::size_t a, std::size_t b) { return gain[a] < gain[b]; });
  for (std::size_t i = 0; i + 1 < count; ++i) {
    const SpectralTransform& lo = transforms[order[i]];
    const SpectralTransform& hi = transforms[order[i + 1]];
    TSQ_CHECK_EQ(lo.length(), hi.length());
    for (std::size_t f = 0; f < lo.length(); ++f) {
      if (std::abs(lo.multiplier(f)) > std::abs(hi.multiplier(f)) + tolerance) {
        return {};
      }
    }
  }
  return order;
}

std::size_t MonotonePrefixLength(
    std::size_t count, const std::function<bool(std::size_t)>& pred) {
  // Invariant: everything before `lo` is true, everything from `hi` on is
  // false.
  std::size_t lo = 0, hi = count;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool EmpiricallyOrdered(std::span<const SpectralTransform> transforms,
                        std::span<const ts::Series> samples,
                        double tolerance) {
  // Precompute transformed versions of every sample under every transform.
  std::vector<std::vector<ts::Series>> transformed(transforms.size());
  for (std::size_t t = 0; t < transforms.size(); ++t) {
    transformed[t].reserve(samples.size());
    for (const ts::Series& s : samples) {
      transformed[t].push_back(transforms[t].ApplyToSeries(s));
    }
  }
  for (std::size_t i = 0; i < transforms.size(); ++i) {
    for (std::size_t j = i + 1; j < transforms.size(); ++j) {
      for (std::size_t a = 0; a < samples.size(); ++a) {
        for (std::size_t b = a + 1; b < samples.size(); ++b) {
          const double d_i =
              ts::EuclideanDistance(transformed[i][a], transformed[i][b]);
          const double d_j =
              ts::EuclideanDistance(transformed[j][a], transformed[j][b]);
          if (d_i > d_j + tolerance) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace tsq::transform
