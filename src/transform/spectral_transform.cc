#include "transform/spectral_transform.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "dft/spectrum.h"

namespace tsq::transform {

SpectralTransform::SpectralTransform(std::string label,
                                     std::vector<dft::Complex> multipliers)
    : label_(std::move(label)), multipliers_(std::move(multipliers)) {
  TSQ_CHECK_GE(multipliers_.size(), std::size_t{1});
}

SpectralTransform SpectralTransform::Identity(std::size_t n) {
  return SpectralTransform("identity",
                           std::vector<dft::Complex>(n, {1.0, 0.0}));
}

bool SpectralTransform::PreservesRealSequences(double tolerance) const {
  const std::size_t n = multipliers_.size();
  if (std::fabs(multipliers_[0].imag()) > tolerance) return false;
  for (std::size_t f = 1; f < n; ++f) {
    const dft::Complex expected = std::conj(multipliers_[f]);
    if (std::abs(multipliers_[n - f] - expected) > tolerance) return false;
  }
  return true;
}

std::vector<dft::Complex> SpectralTransform::ApplyToSpectrum(
    std::span<const dft::Complex> spectrum) const {
  TSQ_CHECK_EQ(spectrum.size(), multipliers_.size());
  std::vector<dft::Complex> out(spectrum.size());
  for (std::size_t f = 0; f < spectrum.size(); ++f) {
    out[f] = spectrum[f] * multipliers_[f];
  }
  return out;
}

ts::Series SpectralTransform::ApplyToSeries(std::span<const double> x) const {
  TSQ_CHECK_EQ(x.size(), multipliers_.size());
  dft::FftPlan plan(x.size());
  const std::vector<dft::Complex> spectrum = plan.Forward(x);
  return plan.InverseReal(ApplyToSpectrum(spectrum));
}

double SpectralTransform::TransformedSquaredDistance(
    std::span<const dft::Complex> x, std::span<const dft::Complex> y) const {
  TSQ_CHECK_EQ(x.size(), multipliers_.size());
  TSQ_CHECK_EQ(y.size(), multipliers_.size());
  double acc = 0.0;
  for (std::size_t f = 0; f < x.size(); ++f) {
    acc += std::norm(multipliers_[f]) * std::norm(x[f] - y[f]);
  }
  return acc;
}

double SpectralTransform::TransformedToPlainSquaredDistance(
    std::span<const dft::Complex> x, std::span<const dft::Complex> q) const {
  TSQ_CHECK_EQ(x.size(), multipliers_.size());
  TSQ_CHECK_EQ(q.size(), multipliers_.size());
  double acc = 0.0;
  for (std::size_t f = 0; f < x.size(); ++f) {
    acc += std::norm(multipliers_[f] * x[f] - q[f]);
  }
  return acc;
}

SpectralTransform SpectralTransform::Compose(
    const SpectralTransform& inner) const {
  TSQ_CHECK_EQ(length(), inner.length());
  std::vector<dft::Complex> multipliers(length());
  for (std::size_t f = 0; f < length(); ++f) {
    multipliers[f] = multipliers_[f] * inner.multipliers_[f];
  }
  return SpectralTransform(label_ + "(" + inner.label_ + ")",
                           std::move(multipliers));
}

FeatureTransform SpectralTransform::ToFeatureTransform(
    const FeatureLayout& layout) const {
  const std::size_t dims = layout.dimensions();
  std::vector<double> scale(dims, 1.0);
  std::vector<double> offset(dims, 0.0);
  for (std::size_t i = 0; i < layout.num_coefficients; ++i) {
    const std::size_t f = layout.coefficient(i);
    TSQ_CHECK_LT(f, multipliers_.size());
    const dft::Polar polar = dft::ToPolar(multipliers_[f]);
    scale[layout.magnitude_dimension(i)] = polar.magnitude;
    offset[layout.magnitude_dimension(i)] = 0.0;
    scale[layout.angle_dimension(i)] = 1.0;
    offset[layout.angle_dimension(i)] = polar.angle;
  }
  return FeatureTransform(std::move(scale), std::move(offset));
}

}  // namespace tsq::transform
