#include "transform/spectral_transform.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "dft/spectrum.h"
#include "kernels/kernels.h"

namespace tsq::transform {

namespace {

// std::complex<double> is array-oriented-access compatible: a contiguous
// complex vector is exactly its interleaved (re, im) doubles, which is the
// layout the kernel layer consumes.
inline std::span<const double> AsDoubles(std::span<const dft::Complex> x) {
  return {reinterpret_cast<const double*>(x.data()), 2 * x.size()};
}

inline std::span<double> AsDoubles(std::span<dft::Complex> x) {
  return {reinterpret_cast<double*>(x.data()), 2 * x.size()};
}

}  // namespace

SpectralTransform::SpectralTransform(std::string label,
                                     std::vector<dft::Complex> multipliers)
    : label_(std::move(label)), multipliers_(std::move(multipliers)) {
  TSQ_CHECK_GE(multipliers_.size(), std::size_t{1});
  const std::size_t n = multipliers_.size();
  weights_.resize(n);
  weights2_.resize(2 * n);
  mul_re2_.resize(2 * n);
  mul_im2_.resize(2 * n);
  polar_.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    const double re = multipliers_[f].real();
    const double im = multipliers_[f].imag();
    weights_[f] = re * re + im * im;
    weights2_[2 * f] = weights_[f];
    weights2_[2 * f + 1] = weights_[f];
    mul_re2_[2 * f] = re;
    mul_re2_[2 * f + 1] = re;
    mul_im2_[2 * f] = im;
    mul_im2_[2 * f + 1] = im;
    polar_[f] = dft::ToPolar(multipliers_[f]);
  }
}

SpectralTransform SpectralTransform::Identity(std::size_t n) {
  return SpectralTransform("identity",
                           std::vector<dft::Complex>(n, {1.0, 0.0}));
}

bool SpectralTransform::PreservesRealSequences(double tolerance) const {
  const std::size_t n = multipliers_.size();
  if (std::fabs(multipliers_[0].imag()) > tolerance) return false;
  for (std::size_t f = 1; f < n; ++f) {
    const dft::Complex expected = std::conj(multipliers_[f]);
    if (std::abs(multipliers_[n - f] - expected) > tolerance) return false;
  }
  return true;
}

std::vector<dft::Complex> SpectralTransform::ApplyToSpectrum(
    std::span<const dft::Complex> spectrum) const {
  TSQ_CHECK_EQ(spectrum.size(), multipliers_.size());
  std::vector<dft::Complex> out(spectrum.size());
  kernels::ComplexPointwiseMultiply(AsDoubles(spectrum), mul_re2_, mul_im2_,
                                    AsDoubles(std::span<dft::Complex>(out)));
  return out;
}

ts::Series SpectralTransform::ApplyToSeries(std::span<const double> x) const {
  TSQ_CHECK_EQ(x.size(), multipliers_.size());
  dft::FftPlan plan(x.size());
  const std::vector<dft::Complex> spectrum = plan.Forward(x);
  return plan.InverseReal(ApplyToSpectrum(spectrum));
}

double SpectralTransform::TransformedSquaredDistance(
    std::span<const dft::Complex> x, std::span<const dft::Complex> y) const {
  TSQ_CHECK_EQ(x.size(), multipliers_.size());
  TSQ_CHECK_EQ(y.size(), multipliers_.size());
  return kernels::WeightedSquaredDistance(AsDoubles(x), AsDoubles(y),
                                          weights2_);
}

double SpectralTransform::TransformedSquaredDistanceWithin(
    std::span<const dft::Complex> x, std::span<const dft::Complex> y,
    double bound) const {
  TSQ_CHECK_EQ(x.size(), multipliers_.size());
  TSQ_CHECK_EQ(y.size(), multipliers_.size());
  return kernels::WeightedSquaredDistanceWithin(AsDoubles(x), AsDoubles(y),
                                                weights2_, bound);
}

double SpectralTransform::TransformedToPlainSquaredDistance(
    std::span<const dft::Complex> x, std::span<const dft::Complex> q) const {
  TSQ_CHECK_EQ(x.size(), multipliers_.size());
  TSQ_CHECK_EQ(q.size(), multipliers_.size());
  return kernels::TransformedToPlainSquaredDistance(AsDoubles(x), AsDoubles(q),
                                                    mul_re2_, mul_im2_);
}

double SpectralTransform::TransformedToPlainSquaredDistanceWithin(
    std::span<const dft::Complex> x, std::span<const dft::Complex> q,
    double bound) const {
  TSQ_CHECK_EQ(x.size(), multipliers_.size());
  TSQ_CHECK_EQ(q.size(), multipliers_.size());
  return kernels::TransformedToPlainSquaredDistanceWithin(
      AsDoubles(x), AsDoubles(q), mul_re2_, mul_im2_, bound);
}

SpectralTransform SpectralTransform::Compose(
    const SpectralTransform& inner) const {
  TSQ_CHECK_EQ(length(), inner.length());
  std::vector<dft::Complex> multipliers(length());
  for (std::size_t f = 0; f < length(); ++f) {
    multipliers[f] = multipliers_[f] * inner.multipliers_[f];
  }
  return SpectralTransform(label_ + "(" + inner.label_ + ")",
                           std::move(multipliers));
}

FeatureTransform SpectralTransform::ToFeatureTransform(
    const FeatureLayout& layout) const {
  const std::size_t dims = layout.dimensions();
  std::vector<double> scale(dims, 1.0);
  std::vector<double> offset(dims, 0.0);
  for (std::size_t i = 0; i < layout.num_coefficients; ++i) {
    const std::size_t f = layout.coefficient(i);
    TSQ_CHECK_LT(f, multipliers_.size());
    const dft::Polar& polar = polar_[f];
    scale[layout.magnitude_dimension(i)] = polar.magnitude;
    offset[layout.magnitude_dimension(i)] = 0.0;
    scale[layout.angle_dimension(i)] = 1.0;
    offset[layout.angle_dimension(i)] = polar.angle;
  }
  return FeatureTransform(std::move(scale), std::move(offset));
}

}  // namespace tsq::transform
