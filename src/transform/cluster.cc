#include "transform/cluster.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace tsq::transform {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  TSQ_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

struct Edge {
  double distance;
  std::size_t a, b;
  bool operator<(const Edge& other) const {
    return distance < other.distance;
  }
};

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

std::vector<Edge> AllEdgesSorted(std::span<const std::vector<double>> points) {
  std::vector<Edge> edges;
  edges.reserve(points.size() * (points.size() - 1) / 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      edges.push_back(
          Edge{std::sqrt(SquaredDistance(points[i], points[j])), i, j});
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::vector<std::size_t> LabelsFrom(UnionFind& uf, std::size_t n) {
  std::vector<std::size_t> labels(n);
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf.Find(i);
    auto it = std::find(roots.begin(), roots.end(), root);
    if (it == roots.end()) {
      labels[i] = roots.size();
      roots.push_back(root);
    } else {
      labels[i] = static_cast<std::size_t>(it - roots.begin());
    }
  }
  return labels;
}

}  // namespace

std::vector<std::size_t> AgglomerativeClusters(
    std::span<const std::vector<double>> points, std::size_t k) {
  const std::size_t n = points.size();
  TSQ_CHECK_GE(n, std::size_t{1});
  TSQ_CHECK_GE(k, std::size_t{1});
  TSQ_CHECK_LE(k, n);
  UnionFind uf(n);
  std::size_t clusters = n;
  // Kruskal-style single-link merging until k clusters remain.
  for (const Edge& edge : AllEdgesSorted(points)) {
    if (clusters == k) break;
    if (uf.Union(edge.a, edge.b)) --clusters;
  }
  return LabelsFrom(uf, n);
}

std::vector<std::size_t> DetectClusters(
    std::span<const std::vector<double>> points, double gap_ratio) {
  const std::size_t n = points.size();
  TSQ_CHECK_GE(n, std::size_t{1});
  if (n == 1) return {0};
  const std::vector<Edge> edges = AllEdgesSorted(points);

  // Record the sequence of merge distances (single-link dendrogram heights).
  std::vector<double> merge_distances;
  {
    UnionFind uf(n);
    for (const Edge& edge : edges) {
      if (uf.Union(edge.a, edge.b)) merge_distances.push_back(edge.distance);
    }
  }
  // Find the first merge whose distance jumps by more than gap_ratio over
  // the previous one; everything from there on is an inter-cluster link.
  double cutoff = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < merge_distances.size(); ++i) {
    if (merge_distances[i - 1] > 0.0 &&
        merge_distances[i] > gap_ratio * merge_distances[i - 1]) {
      cutoff = merge_distances[i];
      break;
    }
  }
  UnionFind uf(n);
  for (const Edge& edge : edges) {
    if (edge.distance >= cutoff) break;
    uf.Union(edge.a, edge.b);
  }
  return LabelsFrom(uf, n);
}

}  // namespace tsq::transform
