#include "transform/feature_transform.h"

#include <algorithm>

#include "common/check.h"

namespace tsq::transform {

FeatureTransform::FeatureTransform(std::vector<double> scale,
                                   std::vector<double> offset)
    : scale_(std::move(scale)), offset_(std::move(offset)) {
  TSQ_CHECK_EQ(scale_.size(), offset_.size());
}

FeatureTransform FeatureTransform::Identity(std::size_t dimensions) {
  return FeatureTransform(std::vector<double>(dimensions, 1.0),
                          std::vector<double>(dimensions, 0.0));
}

rstar::Point FeatureTransform::Apply(const rstar::Point& x) const {
  TSQ_CHECK_EQ(x.size(), dimensions());
  rstar::Point out(x.size());
  for (std::size_t d = 0; d < x.size(); ++d) {
    out[d] = scale_[d] * x[d] + offset_[d];
  }
  return out;
}

rstar::Rect FeatureTransform::Apply(const rstar::Rect& rect) const {
  TSQ_CHECK_EQ(rect.dimensions(), dimensions());
  std::vector<double> low(dimensions()), high(dimensions());
  for (std::size_t d = 0; d < dimensions(); ++d) {
    const double a = scale_[d] * rect.low(d) + offset_[d];
    const double b = scale_[d] * rect.high(d) + offset_[d];
    low[d] = std::min(a, b);
    high[d] = std::max(a, b);
  }
  return rstar::Rect(std::move(low), std::move(high));
}

FeatureTransform FeatureTransform::Compose(
    const FeatureTransform& inner) const {
  TSQ_CHECK_EQ(dimensions(), inner.dimensions());
  std::vector<double> scale(dimensions()), offset(dimensions());
  for (std::size_t d = 0; d < dimensions(); ++d) {
    scale[d] = scale_[d] * inner.scale_[d];
    offset[d] = scale_[d] * inner.offset_[d] + offset_[d];
  }
  return FeatureTransform(std::move(scale), std::move(offset));
}

std::vector<double> FeatureTransform::AsPoint() const {
  std::vector<double> point;
  point.reserve(2 * dimensions());
  for (std::size_t d = 0; d < dimensions(); ++d) {
    point.push_back(scale_[d]);
    point.push_back(offset_[d]);
  }
  return point;
}

std::vector<FeatureTransform> ComposeSets(
    const std::vector<FeatureTransform>& first,
    const std::vector<FeatureTransform>& second) {
  std::vector<FeatureTransform> out;
  out.reserve(first.size() * second.size());
  for (const FeatureTransform& t1 : first) {
    for (const FeatureTransform& t2 : second) {
      out.push_back(t2.Compose(t1));
    }
  }
  return out;
}

}  // namespace tsq::transform
