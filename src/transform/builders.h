#ifndef TSQ_TRANSFORM_BUILDERS_H_
#define TSQ_TRANSFORM_BUILDERS_H_

#include <cstddef>
#include <vector>

#include "transform/spectral_transform.h"

namespace tsq::transform {

/// The w-day (circular, trailing-window) moving average of sequences of
/// length n as a spectral transformation. Exact counterpart of
/// ts::CircularMovingAverage. Requires 1 <= w <= n.
SpectralTransform MovingAverageTransform(std::size_t n, std::size_t w);

/// Momentum (Section 3.1.1): y_i = x_i - x_{(i-step) mod n}. Exact
/// counterpart of ts::CircularMomentum. Requires 1 <= step < n.
SpectralTransform MomentumTransform(std::size_t n, std::size_t step = 1);

/// Circular right shift by s days: y_i = x_{(i-s) mod n}; multiplier
/// exp(-j*2*pi*f*s/n). Exact counterpart of ts::CircularShift.
SpectralTransform ShiftTransform(std::size_t n, std::size_t s);

/// The paper's zero-padded approximate shift (Section 3.1.2): multiplier
/// exp(-j*2*pi*f*s/(n+s)). Approximates ts::PaddedShift for long sequences.
SpectralTransform PaddedShiftTransform(std::size_t n, std::size_t s);

/// Scaling by a constant factor: y = factor * x.
SpectralTransform ScaleTransform(std::size_t n, double factor);

/// Inversion (multiply by -1), used in Section 5.2 to create a second
/// transformation cluster.
SpectralTransform InvertTransform(std::size_t n);

/// Inverted version of an arbitrary transformation: multiplies every
/// coefficient by -1 (Section 5.2).
SpectralTransform Inverted(const SpectralTransform& t);

/// A weighted (circular, trailing) moving average with arbitrary
/// non-negative weights, most-recent first: y_i = sum_k w_k x_{(i-k) mod n}
/// / sum(w). Generalizes MovingAverageTransform (uniform weights) and covers
/// the linearly-weighted MAs of chart analysis. Requires a non-empty weight
/// vector with positive sum, |weights| <= n.
SpectralTransform WeightedMovingAverageTransform(
    std::size_t n, std::span<const double> weights);

/// Linearly-weighted w-day moving average (weights w, w-1, ..., 1).
SpectralTransform LinearWeightedMovingAverageTransform(std::size_t n,
                                                       std::size_t w);

/// Truncated exponential moving average: weights alpha*(1-alpha)^k for
/// k = 0..depth-1, renormalized. `alpha` in (0, 1]; depth defaults to the
/// point where the tail weight drops below 1e-6 (capped at n).
SpectralTransform ExponentialMovingAverageTransform(std::size_t n,
                                                    double alpha,
                                                    std::size_t depth = 0);

/// Ideal band-pass filter: keeps DFT coefficients with min(f, n-f) in
/// [low, high] (inclusive), zeroes the rest. low = 0 keeps the DC term.
/// De-trending ("remove everything slower than f0") is BandPassTransform(n,
/// f0, n/2); smoothing is BandPassTransform(n, 0, f1).
SpectralTransform BandPassTransform(std::size_t n, std::size_t low,
                                    std::size_t high);

/// Second difference (discrete curvature): y_i = x_i - 2 x_{i-1} + x_{i-2}
/// (circular) — the momentum of the momentum.
SpectralTransform SecondDifferenceTransform(std::size_t n);

/// The paper's standard transformation sets ------------------------------

/// Moving averages for w = first..last inclusive (e.g. 5..34 in Fig. 6).
std::vector<SpectralTransform> MovingAverageRange(std::size_t n,
                                                  std::size_t first,
                                                  std::size_t last);

/// Shifts for s = first..last inclusive (e.g. 0..10 in Section 3.3).
std::vector<SpectralTransform> ShiftRange(std::size_t n, std::size_t first,
                                          std::size_t last);

/// Scale factors (e.g. 2..100 in Section 4.4; ordered under "<").
std::vector<SpectralTransform> ScaleRange(std::size_t n, double first,
                                          double last, double step = 1.0);

/// Pairwise composition of two sets (Eq. 11) at the spectral level:
/// every t1 in `first` followed by every t2 in `second`.
std::vector<SpectralTransform> ComposeSpectralSets(
    const std::vector<SpectralTransform>& first,
    const std::vector<SpectralTransform>& second);

}  // namespace tsq::transform

#endif  // TSQ_TRANSFORM_BUILDERS_H_
