#ifndef TSQ_TRANSFORM_TRANSFORM_MBR_H_
#define TSQ_TRANSFORM_TRANSFORM_MBR_H_

#include <span>
#include <vector>

#include "rstar/rect.h"
#include "transform/feature_layout.h"
#include "transform/feature_transform.h"

namespace tsq::transform {

/// Minimum bounding rectangle of a set of transformations (Section 4.1).
///
/// A transformation t = (a, b) over d feature dimensions is a point in
/// 2d-dimensional space; the MBR over a set of them decomposes into the
/// *mult-MBR* [Ml_i, Mh_i] bounding the a-vectors and the *add-MBR*
/// [Al_i, Ah_i] bounding the b-vectors (Fig. 3). Applying the MBR to a data
/// rectangle X yields the rectangle Y of Eq. 12:
///
///   Yl_i = Al_i + min(Ml*Xl, Ml*Xh, Mh*Xl, Mh*Xh)
///   Yh_i = Ah_i + max(Ml*Xl, Ml*Xh, Mh*Xl, Mh*Xh)
///
/// which contains t(x) for every x in X and t in the MBR (Lemma 1).
///
/// Phase-angle dimensions get special treatment: additive angle offsets live
/// on a circle, so the add-MBR bounds them with the *smallest circular
/// interval* (possibly extending beyond [-pi, pi]); downstream intersection
/// tests on angle dimensions are performed modulo 2*pi.
class TransformMbr {
 public:
  /// Builds the MBR over a non-empty set of transformations of equal
  /// dimensionality matching `layout`.
  TransformMbr(std::span<const FeatureTransform> transforms,
               const FeatureLayout& layout);

  std::size_t dimensions() const { return mult_low_.size(); }
  std::size_t transform_count() const { return transform_count_; }

  double mult_low(std::size_t d) const { return mult_low_[d]; }
  double mult_high(std::size_t d) const { return mult_high_[d]; }
  double add_low(std::size_t d) const { return add_low_[d]; }
  double add_high(std::size_t d) const { return add_high_[d]; }

  /// Eq. 12: the image rectangle of `data` under every transformation in the
  /// MBR. Angle dimensions may exceed [-pi, pi]; use CircularIntersects for
  /// tests against query regions.
  rstar::Rect Apply(const rstar::Rect& data) const;

  /// True when `t` lies inside this MBR (for angle-offset dimensions,
  /// membership modulo 2*pi).
  bool Covers(const FeatureTransform& t, double tolerance = 1e-9) const;

  /// Fused Apply + CircularIntersects without allocating the image
  /// rectangle: equivalent to
  /// `CircularIntersects(Apply(data), query, layout)` but cheap enough for
  /// the per-entry hot path of an index traversal.
  bool AppliedIntersects(const rstar::Rect& data,
                         const rstar::Rect& query) const;

 private:
  const FeatureLayout layout_;
  std::size_t transform_count_;
  std::vector<double> mult_low_, mult_high_;
  std::vector<double> add_low_, add_high_;
};

/// Smallest interval [lo, hi] covering all `angles` modulo 2*pi; `hi` may
/// exceed pi (the interval is reported unwrapped, hi - lo <= 2*pi). Requires
/// a non-empty span of angles in [-pi, pi].
std::pair<double, double> SmallestCircularInterval(std::span<const double> angles);

/// True when intervals [a_lo, a_hi] and [b_lo, b_hi] intersect modulo 2*pi.
bool CircularIntervalsIntersect(double a_lo, double a_hi, double b_lo,
                                double b_hi);

/// Rectangle intersection that treats the layout's angle dimensions as
/// circular and the others as linear. This is the test Algorithm 1 performs
/// between a transformed data rectangle and the query rectangle.
bool CircularIntersects(const rstar::Rect& a, const rstar::Rect& b,
                        const FeatureLayout& layout);

}  // namespace tsq::transform

#endif  // TSQ_TRANSFORM_TRANSFORM_MBR_H_
