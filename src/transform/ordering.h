#ifndef TSQ_TRANSFORM_ORDERING_H_
#define TSQ_TRANSFORM_ORDERING_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "transform/spectral_transform.h"
#include "ts/series.h"

namespace tsq::transform {

/// Section 4.4: an ordering t_l <= t_k of a transformation set holds when
/// D(t_l(x), t_l(y)) <= D(t_k(x), t_k(y)) for all sequences x, y. When it
/// holds, post-processing can binary-search for the boundary transformation
/// instead of checking all |T| of them.

/// True when every transformation is a constant real multiplier (a scale
/// factor), the family Lemma 2 proves to be ordered by |factor|.
bool IsScaleFamily(std::span<const SpectralTransform> transforms,
                   double tolerance = 1e-12);

/// For a family of spectral transforms, per-transform "gain" under which the
/// family is ordered *if* multipliers are uniformly dominated: transform l
/// precedes k when |M_l(f)| <= |M_k(f)| for every coefficient f. Returns the
/// permutation sorting the set into such a chain, or an empty vector when no
/// chain exists (e.g. moving averages: Lemma 3/4 show they admit no
/// ordering).
std::vector<std::size_t> DominanceChain(
    std::span<const SpectralTransform> transforms, double tolerance = 1e-12);

/// Counts the length of the true prefix of a monotone predicate over
/// [0, count): pred is true on a (possibly empty) prefix and false on the
/// rest; finds the boundary in O(log count) evaluations.
std::size_t MonotonePrefixLength(std::size_t count,
                                 const std::function<bool(std::size_t)>& pred);

/// Empirically falsifies an ordering claim: returns true when, for every
/// pair (i, j) with i < j in `transforms` and every pair of sample
/// sequences, D(t_i(x), t_i(y)) <= D(t_j(x), t_j(y)). Used by the
/// Lemma 2/3/4 tests.
bool EmpiricallyOrdered(std::span<const SpectralTransform> transforms,
                        std::span<const ts::Series> samples,
                        double tolerance = 1e-9);

}  // namespace tsq::transform

#endif  // TSQ_TRANSFORM_ORDERING_H_
