#ifndef TSQ_TRANSFORM_SPECTRAL_TRANSFORM_H_
#define TSQ_TRANSFORM_SPECTRAL_TRANSFORM_H_

#include <complex>
#include <span>
#include <string>
#include <vector>

#include "dft/fft.h"
#include "dft/spectrum.h"
#include "transform/feature_layout.h"
#include "transform/feature_transform.h"
#include "ts/series.h"

namespace tsq::transform {

/// A linear transformation of time sequences expressed as a per-DFT-
/// coefficient complex multiplier.
///
/// Every transformation the paper uses — m-day moving average, momentum,
/// time shift, scaling, inversion — is a circular convolution with a real
/// kernel (or a scalar multiple), hence acts on the spectrum as
/// X'_f = M_f * X_f (Eq. 5). In the paper's polar real-vector encoding
/// t = (a, b) this is a_mag = |M_f|, b_mag = 0 on magnitudes and
/// a_ang = 1, b_ang = arg(M_f) on angles (Section 3.1.1).
///
/// The class carries the full-length multiplier vector, so it can transform
/// complete sequences (the exact post-processing step of Algorithm 1) and
/// can be projected onto any FeatureLayout for the index-level machinery.
class SpectralTransform {
 public:
  /// `multipliers[f]` scales DFT coefficient f. `label` is used in query
  /// results and diagnostics.
  SpectralTransform(std::string label, std::vector<dft::Complex> multipliers);

  /// The identity transformation of length n.
  static SpectralTransform Identity(std::size_t n);

  const std::string& label() const { return label_; }
  std::size_t length() const { return multipliers_.size(); }
  std::span<const dft::Complex> multipliers() const { return multipliers_; }
  dft::Complex multiplier(std::size_t f) const { return multipliers_[f]; }

  /// True when the multipliers satisfy M_{n-f} == conj(M_f), i.e. the
  /// transformation maps real sequences to real sequences. Required for the
  /// symmetry-property distance doubling to stay a valid lower bound.
  bool PreservesRealSequences(double tolerance = 1e-9) const;

  /// Applies the transformation to a spectrum: element-wise multiply.
  std::vector<dft::Complex> ApplyToSpectrum(
      std::span<const dft::Complex> spectrum) const;

  /// Applies the transformation to a time-domain sequence via FFT.
  ts::Series ApplyToSeries(std::span<const double> x) const;

  /// Squared Euclidean distance between the transformed versions of two
  /// spectra, computed directly in the frequency domain (Parseval):
  ///   D^2(t(x), t(y)) = sum_f |M_f|^2 * |X_f - Y_f|^2
  /// (Eq. 12), using the |M_f|^2 weight vector cached at construction.
  double TransformedSquaredDistance(std::span<const dft::Complex> x,
                                    std::span<const dft::Complex> y) const;

  /// Early-abandoning TransformedSquaredDistance: exact whenever the result
  /// is <= bound; any value > bound (exact or abandoned partial sum) means
  /// "no match". See kernels::EarlyAbandonResult for the checkpoint
  /// contract.
  double TransformedSquaredDistanceWithin(std::span<const dft::Complex> x,
                                          std::span<const dft::Complex> y,
                                          double bound) const;

  /// Squared Euclidean distance between the transformed data sequence and a
  /// plain (untransformed) query:
  ///   D^2(t(x), q) = sum_f |M_f X_f - Q_f|^2.
  /// This is the SIGMOD'97-style semantics ("find sequences whose
  /// transformed version is similar to the query"), under which unitary
  /// transformations like time shifts are meaningful — applying a shift to
  /// both sides would cancel out.
  double TransformedToPlainSquaredDistance(std::span<const dft::Complex> x,
                                           std::span<const dft::Complex> q) const;

  /// Early-abandoning TransformedToPlainSquaredDistance (same contract as
  /// TransformedSquaredDistanceWithin).
  double TransformedToPlainSquaredDistanceWithin(
      std::span<const dft::Complex> x, std::span<const dft::Complex> q,
      double bound) const;

  /// |M_f|^2 per coefficient, precomputed at construction (Eq. 12 weights).
  std::span<const double> squared_magnitudes() const { return weights_; }

  /// The same weights duplicated per complex component
  /// ([w0, w0, w1, w1, ...], length 2n) — the layout the kernel layer
  /// consumes for interleaved complex data.
  std::span<const double> component_squared_magnitudes() const {
    return weights2_;
  }

  /// Composition (this after inner): multiplier product. Exact counterpart
  /// of Eq. 10 for multiplicative transformations. Requires equal lengths.
  SpectralTransform Compose(const SpectralTransform& inner) const;

  /// Projects the transformation onto index feature space (Section 3.1):
  /// per retained coefficient, magnitude dims get (|M_f|, 0) and angle dims
  /// get (1, arg(M_f)); mean/stddev dims are identity.
  FeatureTransform ToFeatureTransform(const FeatureLayout& layout) const;

 private:
  std::string label_;
  std::vector<dft::Complex> multipliers_;
  // Caches derived from multipliers_ at construction (so Compose products
  // get them too), sized for the kernel layer's interleaved-double view:
  // weights_[f] = |M_f|^2; weights2_/mul_re2_/mul_im2_ are the
  // component-duplicated arrays ([v0, v0, v1, v1, ...], length 2n) the
  // kernels consume; polar_ keeps the exact dft::ToPolar results so
  // ToFeatureTransform stays bitwise identical to recomputation.
  std::vector<double> weights_;
  std::vector<double> weights2_;
  std::vector<double> mul_re2_;
  std::vector<double> mul_im2_;
  std::vector<dft::Polar> polar_;
};

}  // namespace tsq::transform

#endif  // TSQ_TRANSFORM_SPECTRAL_TRANSFORM_H_
