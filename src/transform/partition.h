#ifndef TSQ_TRANSFORM_PARTITION_H_
#define TSQ_TRANSFORM_PARTITION_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "transform/feature_layout.h"
#include "transform/feature_transform.h"

namespace tsq::transform {

/// A partition of a transformation set into groups; each group gets its own
/// transformation MBR and its own index traversal (Section 4.3). Groups hold
/// indices into the original transformation vector.
using Partition = std::vector<std::vector<std::size_t>>;

/// All transformations in one MBR (the plain MT-index configuration).
Partition PartitionAll(std::size_t count);

/// One transformation per MBR — degenerates MT-index to ST-index.
Partition PartitionSingletons(std::size_t count);

/// Contiguous groups of (at most) `per_group` subsequent transformations —
/// the x-axis of the paper's Figures 8 and 9 ("# of transformations per
/// MBR"). Requires per_group >= 1.
Partition PartitionBySize(std::size_t count, std::size_t per_group);

/// `num_groups` contiguous groups of near-equal size ("we equally
/// partitioned subsequent transformations", Section 5.2).
/// Requires 1 <= num_groups <= count.
Partition PartitionIntoGroups(std::size_t count, std::size_t num_groups);

/// Cluster-aware partitioning (the fix for Fig. 9's bumps): detects clusters
/// among the transformation points with single-link gap detection, then
/// splits each cluster into groups of at most `per_group` members so that no
/// MBR ever spans an inter-cluster gap.
Partition PartitionByClusters(std::span<const FeatureTransform> transforms,
                              std::size_t per_group, double gap_ratio = 3.0);

/// Estimated execution cost of running one index traversal for a contiguous
/// group [first, last] of the transformation set (Eq. 19's per-rectangle
/// term). Supplied by the query engine's cost model.
using GroupCostFn =
    std::function<double(std::size_t first, std::size_t last)>;

/// Optimal contiguous partitioning by dynamic programming: minimizes the sum
/// of group costs over all ways to cut the (ordered) transformation sequence
/// into contiguous groups. O(count^2) evaluations of `cost`.
Partition PartitionCostBased(std::size_t count, const GroupCostFn& cost);

}  // namespace tsq::transform

#endif  // TSQ_TRANSFORM_PARTITION_H_
