#ifndef TSQ_TRANSFORM_FEATURE_TRANSFORM_H_
#define TSQ_TRANSFORM_FEATURE_TRANSFORM_H_

#include <cstddef>
#include <vector>

#include "rstar/rect.h"

namespace tsq::transform {

/// The paper's transformation object t = (a, b): a pair of real vectors
/// acting on a feature vector x as a .* x + b (Section 3.1).
///
/// Feature transforms live in index feature space (one (a_i, b_i) pair per
/// index dimension) and are what transformation MBRs are built from.
class FeatureTransform {
 public:
  /// Requires scale.size() == offset.size().
  FeatureTransform(std::vector<double> scale, std::vector<double> offset);

  /// The identity over `dimensions` dims (a = 1, b = 0).
  static FeatureTransform Identity(std::size_t dimensions);

  std::size_t dimensions() const { return scale_.size(); }
  double scale(std::size_t d) const { return scale_[d]; }
  double offset(std::size_t d) const { return offset_[d]; }

  /// a .* x + b.
  rstar::Point Apply(const rstar::Point& x) const;

  /// Image of an axis-aligned rect under this (single) transformation:
  /// per dimension [min(a*lo, a*hi) + b, max(a*lo, a*hi) + b].
  rstar::Rect Apply(const rstar::Rect& rect) const;

  /// Composition t3 = this(inner(x)) per Eq. 10:
  ///   a3 = a_this .* a_inner,  b3 = a_this .* b_inner + b_this.
  FeatureTransform Compose(const FeatureTransform& inner) const;

  /// The transformation as a point in 2d-dimensional space (a and b vectors
  /// concatenated, interleaved per dimension) — the representation the
  /// paper's MBRs bound. Used by clustering/partitioning.
  std::vector<double> AsPoint() const;

  bool operator==(const FeatureTransform&) const = default;

 private:
  std::vector<double> scale_;
  std::vector<double> offset_;
};

/// Composition of two transformation *sets* per Eq. 11:
/// T3 = { t2 o t1 : t1 in first, t2 in second } — i.e. every element of
/// `first` followed by every element of `second`.
std::vector<FeatureTransform> ComposeSets(
    const std::vector<FeatureTransform>& first,
    const std::vector<FeatureTransform>& second);

}  // namespace tsq::transform

#endif  // TSQ_TRANSFORM_FEATURE_TRANSFORM_H_
