#include "transform/partition.h"

#include <limits>
#include <numeric>

#include "common/check.h"
#include "transform/cluster.h"

namespace tsq::transform {

Partition PartitionAll(std::size_t count) {
  TSQ_CHECK_GE(count, std::size_t{1});
  Partition partition(1);
  partition[0].resize(count);
  std::iota(partition[0].begin(), partition[0].end(), std::size_t{0});
  return partition;
}

Partition PartitionSingletons(std::size_t count) {
  TSQ_CHECK_GE(count, std::size_t{1});
  Partition partition(count);
  for (std::size_t i = 0; i < count; ++i) partition[i] = {i};
  return partition;
}

Partition PartitionBySize(std::size_t count, std::size_t per_group) {
  TSQ_CHECK_GE(count, std::size_t{1});
  TSQ_CHECK_GE(per_group, std::size_t{1});
  Partition partition;
  for (std::size_t start = 0; start < count; start += per_group) {
    std::vector<std::size_t> group;
    for (std::size_t i = start; i < std::min(count, start + per_group); ++i) {
      group.push_back(i);
    }
    partition.push_back(std::move(group));
  }
  return partition;
}

Partition PartitionIntoGroups(std::size_t count, std::size_t num_groups) {
  TSQ_CHECK_GE(num_groups, std::size_t{1});
  TSQ_CHECK_LE(num_groups, count);
  Partition partition;
  partition.reserve(num_groups);
  std::size_t start = 0;
  for (std::size_t g = 0; g < num_groups; ++g) {
    // Distribute the remainder one element at a time across leading groups.
    const std::size_t remaining = count - start;
    const std::size_t groups_left = num_groups - g;
    const std::size_t size = (remaining + groups_left - 1) / groups_left;
    std::vector<std::size_t> group;
    for (std::size_t i = start; i < start + size; ++i) group.push_back(i);
    start += size;
    partition.push_back(std::move(group));
  }
  TSQ_CHECK_EQ(start, count);
  return partition;
}

Partition PartitionByClusters(std::span<const FeatureTransform> transforms,
                              std::size_t per_group, double gap_ratio) {
  TSQ_CHECK(!transforms.empty());
  TSQ_CHECK_GE(per_group, std::size_t{1});
  std::vector<std::vector<double>> points;
  points.reserve(transforms.size());
  for (const FeatureTransform& t : transforms) points.push_back(t.AsPoint());
  const std::vector<std::size_t> labels = DetectClusters(points, gap_ratio);
  const std::size_t num_clusters =
      1 + *std::max_element(labels.begin(), labels.end());

  Partition partition;
  for (std::size_t cluster = 0; cluster < num_clusters; ++cluster) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < transforms.size(); ++i) {
      if (labels[i] == cluster) members.push_back(i);
    }
    for (std::size_t start = 0; start < members.size(); start += per_group) {
      std::vector<std::size_t> group;
      for (std::size_t i = start;
           i < std::min(members.size(), start + per_group); ++i) {
        group.push_back(members[i]);
      }
      partition.push_back(std::move(group));
    }
  }
  return partition;
}

Partition PartitionCostBased(std::size_t count, const GroupCostFn& cost) {
  TSQ_CHECK_GE(count, std::size_t{1});
  // best[i] = minimal cost of partitioning the first i transformations;
  // cut[i] = start index of the last group in that optimum.
  std::vector<double> best(count + 1,
                           std::numeric_limits<double>::infinity());
  std::vector<std::size_t> cut(count + 1, 0);
  best[0] = 0.0;
  for (std::size_t end = 1; end <= count; ++end) {
    for (std::size_t start = 0; start < end; ++start) {
      const double candidate = best[start] + cost(start, end - 1);
      if (candidate < best[end]) {
        best[end] = candidate;
        cut[end] = start;
      }
    }
  }
  // Reconstruct groups from the cut positions.
  Partition reversed;
  std::size_t end = count;
  while (end > 0) {
    const std::size_t start = cut[end];
    std::vector<std::size_t> group;
    for (std::size_t i = start; i < end; ++i) group.push_back(i);
    reversed.push_back(std::move(group));
    end = start;
  }
  return Partition(reversed.rbegin(), reversed.rend());
}

}  // namespace tsq::transform
