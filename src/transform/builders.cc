#include "transform/builders.h"

#include <cmath>
#include <numbers>
#include <sstream>

#include "common/check.h"
#include "dft/fft.h"

namespace tsq::transform {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

std::string Label(const char* prefix, double value) {
  std::ostringstream os;
  os << prefix << value;
  return os.str();
}

}  // namespace

SpectralTransform MovingAverageTransform(std::size_t n, std::size_t w) {
  TSQ_CHECK_GE(w, std::size_t{1});
  TSQ_CHECK_LE(w, n);
  // Trailing circular window: kernel h_j = 1/w for j in [0, w).
  std::vector<double> kernel(n, 0.0);
  for (std::size_t j = 0; j < w; ++j) kernel[j] = 1.0 / static_cast<double>(w);
  return SpectralTransform(Label("mv", static_cast<double>(w)),
                           dft::KernelTransfer(kernel));
}

SpectralTransform MomentumTransform(std::size_t n, std::size_t step) {
  TSQ_CHECK_GE(step, std::size_t{1});
  TSQ_CHECK_LT(step, n);
  // y_i = x_i - x_{i-step}: kernel h_0 = 1, h_step = -1.
  std::vector<double> kernel(n, 0.0);
  kernel[0] = 1.0;
  kernel[step] = -1.0;
  return SpectralTransform(Label("momentum", static_cast<double>(step)),
                           dft::KernelTransfer(kernel));
}

SpectralTransform ShiftTransform(std::size_t n, std::size_t s) {
  std::vector<dft::Complex> multipliers(n);
  for (std::size_t f = 0; f < n; ++f) {
    const double angle = -kTwoPi * static_cast<double>(f) *
                         static_cast<double>(s) / static_cast<double>(n);
    multipliers[f] = std::polar(1.0, angle);
  }
  return SpectralTransform(Label("shift", static_cast<double>(s)),
                           std::move(multipliers));
}

SpectralTransform PaddedShiftTransform(std::size_t n, std::size_t s) {
  std::vector<dft::Complex> multipliers(n);
  for (std::size_t f = 0; f < n; ++f) {
    const double angle = -kTwoPi * static_cast<double>(f) *
                         static_cast<double>(s) /
                         static_cast<double>(n + s);
    multipliers[f] = std::polar(1.0, angle);
  }
  return SpectralTransform(Label("pshift", static_cast<double>(s)),
                           std::move(multipliers));
}

SpectralTransform ScaleTransform(std::size_t n, double factor) {
  return SpectralTransform(
      Label("scale", factor),
      std::vector<dft::Complex>(n, dft::Complex(factor, 0.0)));
}

SpectralTransform InvertTransform(std::size_t n) {
  return SpectralTransform(
      "invert", std::vector<dft::Complex>(n, dft::Complex(-1.0, 0.0)));
}

SpectralTransform Inverted(const SpectralTransform& t) {
  std::vector<dft::Complex> multipliers(t.multipliers().begin(),
                                        t.multipliers().end());
  for (auto& m : multipliers) m = -m;
  return SpectralTransform("inv-" + t.label(), std::move(multipliers));
}

SpectralTransform WeightedMovingAverageTransform(
    std::size_t n, std::span<const double> weights) {
  TSQ_CHECK(!weights.empty());
  TSQ_CHECK_LE(weights.size(), n);
  double total = 0.0;
  for (double w : weights) {
    TSQ_CHECK_GE(w, 0.0);
    total += w;
  }
  TSQ_CHECK(total > 0.0) << "weights must have positive sum";
  std::vector<double> kernel(n, 0.0);
  for (std::size_t k = 0; k < weights.size(); ++k) {
    kernel[k] = weights[k] / total;
  }
  return SpectralTransform(Label("wma", static_cast<double>(weights.size())),
                           dft::KernelTransfer(kernel));
}

SpectralTransform LinearWeightedMovingAverageTransform(std::size_t n,
                                                       std::size_t w) {
  TSQ_CHECK_GE(w, std::size_t{1});
  TSQ_CHECK_LE(w, n);
  std::vector<double> weights(w);
  for (std::size_t k = 0; k < w; ++k) {
    weights[k] = static_cast<double>(w - k);
  }
  SpectralTransform t = WeightedMovingAverageTransform(n, weights);
  return SpectralTransform(Label("lwma", static_cast<double>(w)),
                           std::vector<dft::Complex>(t.multipliers().begin(),
                                                     t.multipliers().end()));
}

SpectralTransform ExponentialMovingAverageTransform(std::size_t n,
                                                    double alpha,
                                                    std::size_t depth) {
  TSQ_CHECK(alpha > 0.0 && alpha <= 1.0);
  if (depth == 0) {
    // Depth where the next weight alpha*(1-alpha)^depth drops below 1e-6.
    double weight = alpha;
    while (depth < n && weight >= 1e-6) {
      weight *= (1.0 - alpha);
      ++depth;
    }
    depth = std::max<std::size_t>(depth, 1);
  }
  TSQ_CHECK_LE(depth, n);
  std::vector<double> weights(depth);
  double weight = alpha;
  for (std::size_t k = 0; k < depth; ++k) {
    weights[k] = weight;
    weight *= (1.0 - alpha);
  }
  SpectralTransform t = WeightedMovingAverageTransform(n, weights);
  return SpectralTransform(Label("ema", alpha),
                           std::vector<dft::Complex>(t.multipliers().begin(),
                                                     t.multipliers().end()));
}

SpectralTransform BandPassTransform(std::size_t n, std::size_t low,
                                    std::size_t high) {
  TSQ_CHECK_LE(low, high);
  std::vector<dft::Complex> multipliers(n, dft::Complex(0.0, 0.0));
  for (std::size_t f = 0; f < n; ++f) {
    const std::size_t band = f == 0 ? 0 : std::min(f, n - f);
    if (band >= low && band <= high) multipliers[f] = dft::Complex(1.0, 0.0);
  }
  std::ostringstream label;
  label << "band" << low << ".." << high;
  return SpectralTransform(label.str(), std::move(multipliers));
}

SpectralTransform SecondDifferenceTransform(std::size_t n) {
  TSQ_CHECK_GE(n, std::size_t{3});
  std::vector<double> kernel(n, 0.0);
  kernel[0] = 1.0;
  kernel[1] = -2.0;
  kernel[2] = 1.0;
  return SpectralTransform("diff2", dft::KernelTransfer(kernel));
}

std::vector<SpectralTransform> MovingAverageRange(std::size_t n,
                                                  std::size_t first,
                                                  std::size_t last) {
  TSQ_CHECK_LE(first, last);
  std::vector<SpectralTransform> out;
  out.reserve(last - first + 1);
  for (std::size_t w = first; w <= last; ++w) {
    out.push_back(MovingAverageTransform(n, w));
  }
  return out;
}

std::vector<SpectralTransform> ShiftRange(std::size_t n, std::size_t first,
                                          std::size_t last) {
  TSQ_CHECK_LE(first, last);
  std::vector<SpectralTransform> out;
  out.reserve(last - first + 1);
  for (std::size_t s = first; s <= last; ++s) {
    out.push_back(ShiftTransform(n, s));
  }
  return out;
}

std::vector<SpectralTransform> ScaleRange(std::size_t n, double first,
                                          double last, double step) {
  TSQ_CHECK(step > 0.0);
  std::vector<SpectralTransform> out;
  for (double a = first; a <= last + 1e-12; a += step) {
    out.push_back(ScaleTransform(n, a));
  }
  return out;
}

std::vector<SpectralTransform> ComposeSpectralSets(
    const std::vector<SpectralTransform>& first,
    const std::vector<SpectralTransform>& second) {
  std::vector<SpectralTransform> out;
  out.reserve(first.size() * second.size());
  for (const SpectralTransform& t1 : first) {
    for (const SpectralTransform& t2 : second) {
      out.push_back(t2.Compose(t1));
    }
  }
  return out;
}

}  // namespace tsq::transform
